"""Unit tests for the §4.2 flow condition."""

from repro.core.config import ProtocolConfig
from repro.core.flow import FlowController
from repro.core.state import KnowledgeState


def make(n=4, window=8, units_per_pdu=1):
    config = ProtocolConfig(window=window, units_per_pdu=units_per_pdu)
    state = KnowledgeState(n, 0)
    return FlowController(config, state), state


def test_initial_window_allows_first_pdu():
    flow, _ = make()
    decision = flow.check(1)
    assert decision.allowed
    assert decision.window_base == 1


def test_window_limit():
    flow, state = make(window=4)
    # minAL_0 is 1; seq 1..4 allowed, 5 not.
    assert flow.check(4).allowed
    decision = flow.check(5)
    assert not decision.allowed
    assert decision.reason == "window-full"


def test_window_slides_with_min_al():
    flow, state = make(window=4)
    for observer in range(4):
        state.merge_al(observer, (3, 1, 1, 1))  # everyone accepted seqs 1-2
    assert flow.check(6).allowed
    assert not flow.check(7).allowed


def test_buffer_bound_tightens_window():
    flow, state = make(n=4, window=8)
    # minBUF / (H * 2n) = 16 / 8 = 2 -> effective window 2.
    for j in range(4):
        state.update_buf(j, 16)
    assert flow.effective_window() == 2
    assert flow.check(2).allowed
    decision = flow.check(3)
    assert not decision.allowed


def test_exhausted_buffer_blocks_everything():
    flow, state = make(n=4)
    for j in range(4):
        state.update_buf(j, 3)  # 3 // 8 == 0
    decision = flow.check(1)
    assert not decision.allowed
    assert decision.reason == "buffer-exhausted"


def test_units_per_pdu_in_divisor():
    flow, state = make(n=2, window=8, units_per_pdu=4)
    for j in range(2):
        state.update_buf(j, 32)
    # 32 / (4 * 2 * 2) = 2
    assert flow.effective_window() == 2


def test_in_flight_counts_unconfirmed_own_pdus():
    flow, state = make()
    state.advance_req(0, 1)
    state.advance_req(0, 2)   # we sent/self-accepted 2 PDUs
    assert flow.in_flight() == 2
    for observer in range(4):
        state.merge_al(observer, (2, 1, 1, 1))  # seq 1 accepted everywhere
    assert flow.in_flight() == 1


def test_decision_reason_ok():
    flow, _ = make()
    assert flow.check(1).reason == "ok"


def test_decision_reason_behind_window():
    flow, state = make(window=4)
    for observer in range(4):
        state.merge_al(observer, (4, 1, 1, 1))  # seqs 1-3 accepted everywhere
    # Window base has slid to 4; a stale probe for seq 2 is behind it,
    # which is not a congestion signal.
    decision = flow.check(2)
    assert not decision.allowed
    assert decision.reason == "behind-window"


def test_decision_reason_covers_all_blocked_branches():
    # window-full: in-window buffer, seq past the right edge.
    flow, _ = make(window=4)
    assert flow.check(5).reason == "window-full"
    # buffer-exhausted: effective window collapsed to zero.
    flow, state = make(n=4)
    for j in range(4):
        state.update_buf(j, 3)
    assert flow.check(1).reason == "buffer-exhausted"
    # behind-window wins over buffer-exhausted for stale seqs: even with a
    # closed window, a seq below the base is reported as stale, not full.
    assert flow.check(0).reason == "behind-window"
