"""Unit tests for the overrun receive buffer."""

import pytest

from repro.net.buffers import ReceiveBuffer


def test_offer_and_pop_fifo():
    buf = ReceiveBuffer(capacity_units=3)
    assert buf.offer("a") and buf.offer("b") and buf.offer("c")
    assert buf.pop() == "a"
    assert buf.pop() == "b"
    assert buf.pop() == "c"


def test_overrun_drops_new_arrival():
    buf = ReceiveBuffer(capacity_units=2)
    assert buf.offer("a") and buf.offer("b")
    assert not buf.offer("c")
    assert buf.pop() == "a"  # the old content survives


def test_units_per_pdu():
    buf = ReceiveBuffer(capacity_units=5, units_per_pdu=2)
    assert buf.capacity_pdus == 2
    assert buf.offer("a") and buf.offer("b")
    assert not buf.offer("c")
    assert buf.free_units == 1


def test_free_units_track_occupancy():
    buf = ReceiveBuffer(capacity_units=4, units_per_pdu=2)
    assert buf.free_units == 4
    buf.offer("a")
    assert buf.free_units == 2
    buf.pop()
    assert buf.free_units == 4


def test_stats():
    buf = ReceiveBuffer(capacity_units=1)
    buf.offer("a")
    buf.offer("b")
    assert buf.stats.offered == 2
    assert buf.stats.accepted == 1
    assert buf.stats.overruns == 1
    assert buf.stats.high_water_units == 1


def test_high_water_tracks_peak_not_current():
    buf = ReceiveBuffer(capacity_units=4)
    buf.offer("a")
    buf.offer("b")
    buf.pop()
    buf.pop()
    assert buf.stats.high_water_units == 2
    assert len(buf) == 0


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        ReceiveBuffer(capacity_units=1).pop()


def test_peek():
    buf = ReceiveBuffer(capacity_units=2)
    assert buf.peek() is None
    buf.offer("a")
    assert buf.peek() == "a"
    assert len(buf) == 1  # peek does not consume


def test_validation():
    with pytest.raises(ValueError):
        ReceiveBuffer(capacity_units=0)
    with pytest.raises(ValueError):
        ReceiveBuffer(capacity_units=4, units_per_pdu=0)
    with pytest.raises(ValueError):
        ReceiveBuffer(capacity_units=1, units_per_pdu=2)


def test_clear():
    buf = ReceiveBuffer(capacity_units=2)
    buf.offer("a")
    buf.clear()
    assert buf.empty
    assert buf.free_units == 2
