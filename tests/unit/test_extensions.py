"""Unit tests for the total-order and selective-group extensions."""

import pytest

from repro.core.cluster import build_cluster
from repro.core.pdu import DataPdu
from repro.extensions.selective_groups import SelectiveBroadcastService
from repro.extensions.total_order import TotalOrderEntity, total_order_key
from repro.ordering.events import delivery_logs
from repro.ordering.properties import total_order_agreement


def pdu(src, seq, ack):
    return DataPdu(cid=1, src=src, seq=seq, ack=tuple(ack), buf=0, data="x")


class TestTotalOrderKey:
    def test_rank_extends_same_source_causality(self):
        p = pdu(0, 1, (1, 1, 1))
        q = pdu(0, 2, (2, 1, 1))
        assert total_order_key(p) < total_order_key(q)

    def test_rank_extends_cross_source_causality(self):
        p = pdu(0, 2, (2, 1, 1))          # Table 1's c
        q = pdu(1, 1, (3, 1, 2))          # Table 1's d, c < d
        assert total_order_key(p) < total_order_key(q)

    def test_rank_is_deterministic_total_order(self):
        b = pdu(2, 1, (2, 1, 1))
        c = pdu(0, 2, (2, 1, 1))          # b ~ c: tie on sum, src breaks it
        assert total_order_key(c) != total_order_key(b)
        assert sorted([total_order_key(b), total_order_key(c)]) == [
            total_order_key(c), total_order_key(b),
        ]


class TestTotalOrderCluster:
    def build(self, n=3):
        return build_cluster(n, engine_factory=TotalOrderEntity)

    def test_all_entities_agree_on_order(self):
        cluster = self.build(3)
        for r in range(10):
            for i in range(3):
                cluster.submit(i, f"m{i}.{r}")
        cluster.run_until_quiescent(max_time=30.0)
        logs = delivery_logs(cluster.trace, 3)
        assert total_order_agreement(logs) == []
        assert all(len(log) > 0 for log in logs)

    def test_tail_is_held_back_not_misordered(self):
        cluster = self.build(3)
        cluster.submit(0, "only")
        cluster.run_until_quiescent(max_time=10.0)
        # A single message has no successor from every source: held back.
        held = [e.undelivered_tail for e in cluster.engines]
        assert all(h >= 0 for h in held)
        logs = delivery_logs(cluster.trace, 3)
        assert total_order_agreement(logs) == []

    def test_delivered_prefix_is_causal(self):
        from repro.ordering.checker import verify_run

        cluster = self.build(4)
        for r in range(8):
            for i in range(4):
                cluster.submit(i, f"x{i}.{r}")
        cluster.run_until_quiescent(max_time=30.0)
        report = verify_run(cluster.trace, 4, expect_all_delivered=False)
        assert not report.causality
        assert not report.local_order


class TestSelectiveGroups:
    def test_multicast_filters_destinations(self):
        svc = SelectiveBroadcastService(n=4, seed=1)
        svc.multicast(0, {1, 2}, "duo")
        svc.broadcast(3, "all")
        svc.run_until_quiescent(max_time=10.0)
        assert svc.delivered_payloads(0) == ["all"]
        assert svc.delivered_payloads(1) == ["duo", "all"]
        assert svc.delivered_payloads(2) == ["duo", "all"]
        assert svc.delivered_payloads(3) == ["all"]

    def test_sender_not_in_destinations(self):
        svc = SelectiveBroadcastService(n=3)
        svc.multicast(0, {1}, "not-for-me")
        svc.run_until_quiescent(max_time=10.0)
        assert svc.delivered_payloads(0) == []
        assert svc.delivered_payloads(1) == ["not-for-me"]

    def test_invalid_destination_rejected(self):
        svc = SelectiveBroadcastService(n=3)
        with pytest.raises(ValueError):
            svc.multicast(0, {5}, "x")

    def test_causal_order_across_overlapping_groups(self):
        svc = SelectiveBroadcastService(n=3, seed=3)
        svc.multicast(0, {1}, "first")     # group {1}
        svc.run_until_quiescent(max_time=10.0)
        svc.multicast(1, {1, 2}, "second")  # causally after "first"
        svc.run_until_quiescent(max_time=10.0)
        at_one = svc.delivered_payloads(1)
        assert at_one.index("first") < at_one.index("second")

    def test_delivery_metadata_unwrapped(self):
        svc = SelectiveBroadcastService(n=2)
        svc.multicast(0, {1}, {"k": 1})
        svc.run_until_quiescent(max_time=10.0)
        message = svc.delivered(1)[0]
        assert message.data == {"k": 1}
        assert message.src == 0
