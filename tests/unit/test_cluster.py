"""Unit tests for hosts, the CPU model and cluster assembly."""

import pytest

from repro.core.cluster import CpuModel, build_cluster
from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError
from repro.net.topology import Topology


def test_cpu_model_linear_in_n():
    cpu = CpuModel(base=10e-6, per_entity=2e-6)
    assert cpu.service_time(None, 4) == pytest.approx(18e-6)
    assert cpu.service_time(None, 8) - cpu.service_time(None, 4) == pytest.approx(8e-6)


def test_build_cluster_requires_two_entities():
    with pytest.raises(ConfigurationError):
        build_cluster(1)


def test_build_cluster_topology_size_checked():
    with pytest.raises(ConfigurationError):
        build_cluster(3, topology=Topology.uniform(4, 1e-4))


def test_single_broadcast_delivered_everywhere():
    cluster = build_cluster(3)
    cluster.submit(0, "hello")
    cluster.run_until_quiescent(max_time=5.0)
    for i in range(3):
        assert [m.data for m in cluster.delivered(i)] == ["hello"]


def test_sender_also_delivers_to_itself():
    cluster = build_cluster(2)
    cluster.submit(1, "self-included")
    cluster.run_until_quiescent(max_time=5.0)
    assert cluster.delivered(1)[0].data == "self-included"
    assert cluster.delivered(1)[0].src == 1


def test_delivery_metadata():
    cluster = build_cluster(3)
    cluster.submit(2, "x")
    cluster.run_until_quiescent(max_time=5.0)
    message = cluster.delivered(0)[0]
    assert message.src == 2
    assert message.seq == 1
    assert message.delivered_at > 0


def test_hosts_process_serially_with_service_time():
    cpu = CpuModel(base=1e-3, per_entity=0.0)
    cluster = build_cluster(2, cpu=cpu)
    cluster.submit(0, "a")
    cluster.submit(0, "b")
    cluster.run_until_quiescent(max_time=10.0)
    host = cluster.hosts[1]
    assert host.pdus_processed >= 2
    assert host.mean_service_time >= 1e-3


def test_delivery_listener_invoked():
    cluster = build_cluster(2)
    seen = []
    cluster.hosts[1].add_delivery_listener(lambda m: seen.append(m.data))
    cluster.submit(0, "ping")
    cluster.run_until_quiescent(max_time=5.0)
    assert seen == ["ping"]


def test_run_for_advances_time():
    cluster = build_cluster(2)
    t = cluster.run_for(0.5)
    assert t == pytest.approx(0.5)


def test_quiescence_timeout_raises():
    # Strict paper mode cannot acknowledge the tail of a finite workload.
    cluster = build_cluster(3, config=ProtocolConfig(strict_paper_mode=True))
    cluster.submit(0, "stuck")
    with pytest.raises(TimeoutError):
        cluster.run_until_quiescent(max_time=0.5)


def test_engines_share_protocol_config():
    config = ProtocolConfig(window=3)
    cluster = build_cluster(3, config=config)
    assert all(e.config.window == 3 for e in cluster.engines)


def test_undersized_buffer_rejected():
    # The flow condition divides minBUF by 2nH: buffers below that block
    # all transmission, so the builder refuses them.
    with pytest.raises(ConfigurationError):
        build_cluster(3, buffer_capacity=5)


def test_buffer_overrun_happens_with_small_buffers():
    # A slow CPU and a burst larger than the buffer must overrun.
    cpu = CpuModel(base=5e-3, per_entity=0.0)
    cluster = build_cluster(3, buffer_capacity=6, cpu=cpu)
    for k in range(12):
        cluster.submit(0, f"burst-{k}")
    cluster.run_for(0.05)
    overruns = sum(h.buffer.stats.overruns for h in cluster.hosts)
    assert overruns > 0
    assert cluster.trace.count("drop") >= overruns


def test_overrun_losses_are_recovered():
    cpu = CpuModel(base=2e-3, per_entity=0.0)
    cluster = build_cluster(3, buffer_capacity=6, cpu=cpu)
    for k in range(8):
        cluster.submit(0, f"m{k}")
    cluster.run_until_quiescent(max_time=60.0)
    for i in range(3):
        assert len(cluster.delivered(i)) == 8
