"""Unit tests for the knowledge matrices (REQ, AL, PAL, BUF)."""

import pytest

from repro.core.state import INITIAL_BUF, KnowledgeState


def test_initial_state():
    st = KnowledgeState(3, 0)
    assert st.req == [1, 1, 1]
    assert st.min_al(0) == 1
    assert st.min_pal(2) == 1
    assert st.min_buf() == INITIAL_BUF
    assert st.req_vector() == (1, 1, 1)


def test_validation():
    with pytest.raises(ValueError):
        KnowledgeState(0, 0)
    with pytest.raises(ValueError):
        KnowledgeState(3, 3)
    with pytest.raises(ValueError):
        KnowledgeState(3, -1)


def test_advance_req():
    st = KnowledgeState(3, 0)
    st.advance_req(1, 1)
    assert st.req[1] == 2
    st.advance_req(1, 2)
    assert st.req[1] == 3


def test_advance_req_out_of_order_rejected():
    st = KnowledgeState(3, 0)
    with pytest.raises(ValueError):
        st.advance_req(1, 2)
    st.advance_req(1, 1)
    with pytest.raises(ValueError):
        st.advance_req(1, 1)  # duplicate


def test_merge_al_updates_and_reports_change():
    st = KnowledgeState(3, 0)
    outcome = st.merge_al(1, (3, 1, 2))
    assert outcome.changed is True and bool(outcome)
    assert st.al[1] == [3, 1, 2]
    again = st.merge_al(1, (3, 1, 2))  # no change
    assert again.changed is False and not again
    assert again.dirty == ()


def test_merge_reports_dirty_columns_when_minima_rise():
    st = KnowledgeState(2, 0)
    # Raising row 1 alone cannot move a column minimum: row 0 still pins
    # both columns at 1, so the merge changed cells but dirtied nothing.
    assert st.merge_al(1, (5, 5)).dirty == ()
    # Row 0 catches up; both column minima rise to the new row-wise floor.
    outcome = st.merge_al(0, (3, 2))
    assert outcome.dirty == (0, 1)
    assert st.min_al(0) == 3
    assert st.min_al(1) == 2


def test_merge_on_excluded_row_never_dirties():
    st = KnowledgeState(2, 0)
    st.set_excluded(1, True)
    # The excluded row's knowledge is folded but does not gate any minimum.
    outcome = st.merge_al(1, (7, 7))
    assert outcome.changed is True
    assert outcome.dirty == ()
    assert st.min_al(0) == 1  # only row 0 counts, and it did not move


def test_merge_is_elementwise_max():
    st = KnowledgeState(3, 0)
    st.merge_al(1, (3, 1, 2))
    st.merge_al(1, (2, 5, 1))  # stale in [0] and [2], newer in [1]
    assert st.al[1] == [3, 5, 2]


def test_min_al_over_observers():
    st = KnowledgeState(3, 0)
    st.merge_al(0, (4, 1, 1))
    st.merge_al(1, (3, 1, 1))
    st.merge_al(2, (5, 1, 1))
    assert st.min_al(0) == 3
    assert st.min_al(1) == 1


def test_min_cache_matches_recompute():
    st = KnowledgeState(4, 0)
    updates = [
        (0, (2, 3, 1, 1)), (1, (5, 1, 2, 2)), (2, (3, 3, 3, 3)),
        (3, (2, 2, 2, 9)), (1, (6, 4, 2, 2)), (0, (6, 3, 1, 4)),
    ]
    for observer, vec in updates:
        st.merge_al(observer, vec)
        for k in range(4):
            assert st.min_al(k) == min(row[k] for row in st.al)


def test_min_pal_tracks_merge_pal():
    st = KnowledgeState(3, 0)
    st.merge_pal(0, (4, 2, 2))
    st.merge_pal(1, (3, 2, 2))
    st.merge_pal(2, (5, 1, 2))
    assert st.min_pal(0) == 3
    assert st.min_pal(1) == 1
    assert st.min_pal(2) == 2


def test_update_buf_not_monotone():
    st = KnowledgeState(2, 0)
    st.update_buf(1, 10)
    assert st.min_buf() == 10
    st.update_buf(1, 50)   # buffer drained: value goes back up
    assert st.min_buf() == 50
    st.update_buf(0, 20)
    assert st.min_buf() == 20


def test_pack_vector_is_min_al_per_source():
    st = KnowledgeState(3, 0)
    st.merge_al(0, (3, 2, 2))
    st.merge_al(1, (2, 4, 2))
    st.merge_al(2, (4, 2, 5))
    assert st.pack_vector() == (2, 2, 2)


def test_snapshot_is_deep_copy():
    st = KnowledgeState(2, 0)
    snap = st.snapshot()
    snap["al"][0][0] = 99
    snap["req"][0] = 99
    assert st.al[0][0] == 1
    assert st.req[0] == 1


def test_snapshot_includes_membership_and_cached_minima():
    # Regression: snapshot() used to return only req/al/pal/buf, so
    # view-change assertions and `repro inspect` dumps silently missed the
    # exclusion flags and every cached minimum.
    st = KnowledgeState(3, 0)
    st.merge_al(1, (4, 2, 3))
    st.merge_pal(1, (2, 2, 2))
    st.update_buf(2, 17)
    st.set_excluded(2, True)
    snap = st.snapshot()
    assert snap["excluded"] == [False, False, True]
    assert snap["evicted"] == [False, False, False]
    assert snap["min_al"] == [st.min_al(k) for k in range(3)]
    assert snap["min_pal"] == [st.min_pal(k) for k in range(3)]
    assert snap["min_al_all"] == [st.min_al_all_rows(k) for k in range(3)]
    assert snap["min_buf"] == st.min_buf()
    # Deep copy: mutating the snapshot does not reach the live caches.
    snap["min_al"][0] = 99
    snap["excluded"][1] = True
    assert st.min_al(0) != 99
    assert st.excluded[1] is False


def test_check_cache_consistency_clean_and_after_churn():
    st = KnowledgeState(4, 1)
    assert st.check_cache_consistency() == {}
    st.merge_al(0, (5, 2, 3, 1))
    st.merge_pal(2, (1, 4, 2, 2))
    st.update_buf(3, 9)
    st.accept(0, 1)
    st.set_excluded(3, True)
    st.set_evicted(2, True)
    st.set_evicted(2, False)
    st.set_excluded(3, False)
    assert st.check_cache_consistency() == {}


def test_check_cache_consistency_reports_corruption():
    st = KnowledgeState(3, 0)
    st.merge_al(1, (4, 4, 4))
    st._min_al[0] = 77  # sabotage the cache
    problems = st.check_cache_consistency()
    assert "min_al[0]" in problems
    assert problems["min_al[0]"] == (77, 1)


def test_accept_matches_advance_plus_own_row_merge():
    # accept(src, seq) is the fused form of advance_req + folding the REQ
    # vector into the own AL row; both must leave identical state.
    fused, classic = KnowledgeState(3, 0), KnowledgeState(3, 0)
    for src, seq in [(1, 1), (2, 1), (1, 2), (0, 1)]:
        outcome = fused.accept(src, seq)
        classic.advance_req(src, seq)
        changed = classic.merge_al(0, classic.req_vector())
        assert outcome.changed == changed.changed
        assert outcome.dirty == changed.dirty
    assert fused.snapshot() == classic.snapshot()
    assert fused.check_cache_consistency() == {}


def test_accept_out_of_order_rejected():
    st = KnowledgeState(3, 0)
    with pytest.raises(ValueError):
        st.accept(1, 2)
    st.accept(1, 1)
    with pytest.raises(ValueError):
        st.accept(1, 1)  # duplicate


def test_min_buf_known_tracks_first_live_advertisement():
    st = KnowledgeState(3, 0)
    assert st.min_buf_known() is False
    assert st.min_buf() == INITIAL_BUF  # flow stays optimistic pre-contact
    st.update_buf(1, 42)
    assert st.min_buf_known() is True
    assert st.min_buf() == 42


def test_min_buf_unknown_while_only_excluded_rows_advertised():
    st = KnowledgeState(3, 0)
    st.set_excluded(1, True)
    st.update_buf(1, 5)  # recorded, but the row gates nothing
    assert st.min_buf() == INITIAL_BUF
    assert st.min_buf_known() is False


def test_exclude_advertise_reinclude_refreshes_min_buf():
    # Regression (satellite audit): an advertisement that arrives while the
    # observer is excluded must be folded back into minBUF on re-inclusion,
    # not leave the cache stale at the pre-exclusion value.
    st = KnowledgeState(3, 0)
    st.update_buf(1, 50)
    st.update_buf(2, 80)
    assert st.min_buf() == 50
    st.set_excluded(1, True)
    assert st.min_buf() == 80  # row 1 no longer gates
    st.update_buf(1, 7)        # advertisement lands while excluded
    assert st.min_buf() == 80
    st.set_excluded(1, False)  # re-include: the value advertised meanwhile
    assert st.min_buf() == 7   # must gate again, not the stale 50
    assert st.check_cache_consistency() == {}


def test_evict_advertise_readmit_refreshes_min_buf():
    # Same invariant through the eviction/rejoin path.
    st = KnowledgeState(3, 0)
    st.update_buf(1, 50)
    st.update_buf(2, 80)
    st.set_evicted(1, True)
    st.update_buf(1, 3)
    assert st.min_buf() == 80
    st.set_evicted(1, False)
    assert st.min_buf() == 3
    assert st.check_cache_consistency() == {}


def test_matrix_views_read_like_lists():
    st = KnowledgeState(3, 0)
    st.merge_al(1, (3, 1, 2))
    assert list(st.al[1]) == [3, 1, 2]
    assert st.al[1][:] == [3, 1, 2]
    assert st.al[1][-1] == 2
    assert len(st.al) == 3 and len(st.al[0]) == 3
    assert [row[:] for row in st.al] == [[1, 1, 1], [3, 1, 2], [1, 1, 1]]
    assert st.al == [[1, 1, 1], [3, 1, 2], [1, 1, 1]]
    assert st.al != [[1, 1, 1], [3, 1, 9], [1, 1, 1]]
    with pytest.raises(IndexError):
        st.al[0][3]
