"""Unit tests for the knowledge matrices (REQ, AL, PAL, BUF)."""

import pytest

from repro.core.state import INITIAL_BUF, KnowledgeState


def test_initial_state():
    st = KnowledgeState(3, 0)
    assert st.req == [1, 1, 1]
    assert st.min_al(0) == 1
    assert st.min_pal(2) == 1
    assert st.min_buf() == INITIAL_BUF
    assert st.req_vector() == (1, 1, 1)


def test_validation():
    with pytest.raises(ValueError):
        KnowledgeState(0, 0)
    with pytest.raises(ValueError):
        KnowledgeState(3, 3)
    with pytest.raises(ValueError):
        KnowledgeState(3, -1)


def test_advance_req():
    st = KnowledgeState(3, 0)
    st.advance_req(1, 1)
    assert st.req[1] == 2
    st.advance_req(1, 2)
    assert st.req[1] == 3


def test_advance_req_out_of_order_rejected():
    st = KnowledgeState(3, 0)
    with pytest.raises(ValueError):
        st.advance_req(1, 2)
    st.advance_req(1, 1)
    with pytest.raises(ValueError):
        st.advance_req(1, 1)  # duplicate


def test_merge_al_updates_and_reports_change():
    st = KnowledgeState(3, 0)
    outcome = st.merge_al(1, (3, 1, 2))
    assert outcome.changed is True and bool(outcome)
    assert st.al[1] == [3, 1, 2]
    again = st.merge_al(1, (3, 1, 2))  # no change
    assert again.changed is False and not again
    assert again.dirty == ()


def test_merge_reports_dirty_columns_when_minima_rise():
    st = KnowledgeState(2, 0)
    # Raising row 1 alone cannot move a column minimum: row 0 still pins
    # both columns at 1, so the merge changed cells but dirtied nothing.
    assert st.merge_al(1, (5, 5)).dirty == ()
    # Row 0 catches up; both column minima rise to the new row-wise floor.
    outcome = st.merge_al(0, (3, 2))
    assert outcome.dirty == (0, 1)
    assert st.min_al(0) == 3
    assert st.min_al(1) == 2


def test_merge_on_excluded_row_never_dirties():
    st = KnowledgeState(2, 0)
    st.set_excluded(1, True)
    # The excluded row's knowledge is folded but does not gate any minimum.
    outcome = st.merge_al(1, (7, 7))
    assert outcome.changed is True
    assert outcome.dirty == ()
    assert st.min_al(0) == 1  # only row 0 counts, and it did not move


def test_merge_is_elementwise_max():
    st = KnowledgeState(3, 0)
    st.merge_al(1, (3, 1, 2))
    st.merge_al(1, (2, 5, 1))  # stale in [0] and [2], newer in [1]
    assert st.al[1] == [3, 5, 2]


def test_min_al_over_observers():
    st = KnowledgeState(3, 0)
    st.merge_al(0, (4, 1, 1))
    st.merge_al(1, (3, 1, 1))
    st.merge_al(2, (5, 1, 1))
    assert st.min_al(0) == 3
    assert st.min_al(1) == 1


def test_min_cache_matches_recompute():
    st = KnowledgeState(4, 0)
    updates = [
        (0, (2, 3, 1, 1)), (1, (5, 1, 2, 2)), (2, (3, 3, 3, 3)),
        (3, (2, 2, 2, 9)), (1, (6, 4, 2, 2)), (0, (6, 3, 1, 4)),
    ]
    for observer, vec in updates:
        st.merge_al(observer, vec)
        for k in range(4):
            assert st.min_al(k) == min(row[k] for row in st.al)


def test_min_pal_tracks_merge_pal():
    st = KnowledgeState(3, 0)
    st.merge_pal(0, (4, 2, 2))
    st.merge_pal(1, (3, 2, 2))
    st.merge_pal(2, (5, 1, 2))
    assert st.min_pal(0) == 3
    assert st.min_pal(1) == 1
    assert st.min_pal(2) == 2


def test_update_buf_not_monotone():
    st = KnowledgeState(2, 0)
    st.update_buf(1, 10)
    assert st.min_buf() == 10
    st.update_buf(1, 50)   # buffer drained: value goes back up
    assert st.min_buf() == 50
    st.update_buf(0, 20)
    assert st.min_buf() == 20


def test_pack_vector_is_min_al_per_source():
    st = KnowledgeState(3, 0)
    st.merge_al(0, (3, 2, 2))
    st.merge_al(1, (2, 4, 2))
    st.merge_al(2, (4, 2, 5))
    assert st.pack_vector() == (2, 2, 2)


def test_snapshot_is_deep_copy():
    st = KnowledgeState(2, 0)
    snap = st.snapshot()
    snap["al"][0][0] = 99
    snap["req"][0] = 99
    assert st.al[0][0] == 1
    assert st.req[0] == 1
