"""Unit tests for deferred confirmation, heartbeats and strict paper mode."""

from repro.core.config import ConfirmationMode, ProtocolConfig
from repro.core.pdu import HeartbeatPdu
from tests.conftest import EngineDriver, make_pdu


def test_heartbeat_after_hearing_from_all(driver):
    """Deferred confirmation: send after receiving from every entity (§5)."""
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    assert driver.heartbeats_sent == []
    driver.receive(make_pdu(2, 1, (1, 1, 1)))
    assert len(driver.heartbeats_sent) == 1
    hb = driver.heartbeats_sent[0]
    assert hb.ack == (1, 2, 2)


def test_heartbeat_after_timer(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.tick(dt=driver.engine.config.deferred_interval + 1e-9)
    assert len(driver.heartbeats_sent) == 1


def test_no_heartbeat_without_news(driver):
    driver.tick(dt=1.0)
    driver.tick(dt=1.0)
    assert driver.heartbeats_sent == []


def test_pending_data_takes_priority_over_heartbeat(driver):
    driver.engine.submit("queued")  # sent immediately; resets heard_from
    driver.receive(make_pdu(1, 1, (2, 1, 1)))
    driver.receive(make_pdu(2, 1, (2, 1, 1)))
    # Hearing from all with no *pending* data sends a heartbeat...
    assert len(driver.heartbeats_sent) == 1
    # ...but with data pending, the data PDU is the confirmation.
    driver.engine._pending.append(("later", 0))
    driver.receive(make_pdu(1, 2, (2, 2, 1)))
    driver.receive(make_pdu(2, 2, (2, 2, 2)))
    assert len(driver.data_sent) == 2
    assert len(driver.heartbeats_sent) == 1  # unchanged


def test_data_pdu_resets_confirmation_state(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.submit("x")  # carries ack (1->2) for E1's PDU
    driver.tick(dt=driver.engine.config.deferred_interval + 1e-9)
    # Nothing new since the data PDU went out, but the engine still holds
    # undrained state (its own PDU and E1's await pre-ack), so the timer
    # emits a *probe* heartbeat rather than staying silent.
    assert [hb.probe for hb in driver.heartbeats_sent] == [True]


def test_immediate_mode_confirms_every_receipt():
    drv = EngineDriver(0, 3, ProtocolConfig(confirmation=ConfirmationMode.IMMEDIATE))
    drv.receive(make_pdu(1, 1, (1, 1, 1)))
    drv.receive(make_pdu(2, 1, (1, 1, 1)))
    drv.receive(make_pdu(1, 2, (1, 2, 1)))
    assert len(drv.heartbeats_sent) == 3


def test_strict_mode_sends_sequenced_null():
    drv = EngineDriver(0, 3, ProtocolConfig(strict_paper_mode=True))
    drv.receive(make_pdu(1, 1, (1, 1, 1)))
    drv.receive(make_pdu(2, 1, (1, 1, 1)))
    assert drv.heartbeats_sent == []
    nulls = [p for p in drv.data_sent if p.is_null]
    assert len(nulls) == 1
    assert nulls[0].seq == 1
    assert nulls[0].ack == (1, 2, 2)
    assert drv.engine.counters.sent_null == 1


def test_strict_mode_null_respects_flow_when_not_forced():
    config = ProtocolConfig(strict_paper_mode=True, window=1)
    drv = EngineDriver(0, 3, config)
    drv.submit("a")  # fills the window
    drv.receive(make_pdu(1, 1, (1, 1, 1)))
    drv.receive(make_pdu(2, 1, (1, 1, 1)))
    # Window full -> the unforced confirmation is skipped...
    assert drv.engine.counters.sent_null == 0
    # ...but the deferred timer forces it through.
    drv.tick(dt=config.deferred_interval + 1e-9)
    assert drv.engine.counters.sent_null == 1


def test_probe_flag_on_stuck_resend(driver):
    # Heard-from-all confirmations are fresh, not probes.
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.receive(make_pdu(2, 1, (1, 1, 1)))
    assert [hb.probe for hb in driver.heartbeats_sent] == [False]
    # Timer-driven repeats while state remains undrained are probes, with
    # exponential backoff between them.
    interval = driver.engine.config.deferred_interval + 1e-9
    driver.tick(dt=interval)
    driver.tick(dt=interval)        # within backoff: suppressed
    driver.tick(dt=interval)
    assert [hb.probe for hb in driver.heartbeats_sent] == [False, True, True]


def test_probe_answered_with_fresh_heartbeat(driver):
    # A drained entity answers a probe so the prober can catch up.
    probe = HeartbeatPdu(cid=1, src=2, ack=(1, 1, 1), pack=(1, 1, 1), buf=10**6, probe=True)
    driver.clock = 1.0  # past the rate limit
    driver.receive(probe)
    assert len(driver.heartbeats_sent) == 1
    assert driver.heartbeats_sent[0].probe is False


def test_stale_peer_answered(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.sent.clear()
    # E2's heartbeat shows it has not seen E1's PDU; we answer with ours.
    stale = HeartbeatPdu(cid=1, src=2, ack=(1, 1, 1), pack=(1, 1, 1), buf=10**6)
    driver.clock = 1.0
    driver.receive(stale)
    assert len(driver.heartbeats_sent) == 1


def test_up_to_date_heartbeat_not_answered(driver):
    fresh = HeartbeatPdu(cid=1, src=2, ack=(1, 1, 1), pack=(1, 1, 1), buf=10**6)
    driver.clock = 1.0
    driver.receive(fresh)
    assert driver.heartbeats_sent == []


def test_heartbeat_merges_pal(driver):
    hb = HeartbeatPdu(cid=1, src=1, ack=(1, 1, 1), pack=(1, 3, 2), buf=10**6)
    driver.receive(hb)
    assert driver.engine.state.pal[1] == [1, 3, 2]
