"""Unit tests for bandwidth and jitter modelling, and CID demultiplexing."""

from dataclasses import dataclass

import pytest

from repro.core.cluster import build_cluster
from repro.core.config import ProtocolConfig
from repro.net.network import MCNetwork
from repro.net.topology import Topology
from repro.ordering.checker import verify_run
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from tests.conftest import EngineDriver, make_pdu


@dataclass(frozen=True)
class Pdu:
    src: int
    seq: int
    size: int = 1000
    is_control: bool = False

    def wire_size(self) -> int:
        return self.size


def build_net(**kw):
    sim = Simulator()
    net = MCNetwork(sim, TraceLog(), Topology.uniform(2, 1e-3), **kw)
    arrivals = []
    net.attach(0, lambda p: None)
    net.attach(1, lambda p: arrivals.append((sim.now, p)))
    return sim, net, arrivals


class TestBandwidth:
    def test_serialisation_delay_added(self):
        sim, net, arrivals = build_net(bandwidth_bytes_per_s=1e6)
        net.broadcast(0, Pdu(0, 1, size=1000))   # 1 ms on a 1 MB/s link
        sim.run()
        assert arrivals[0][0] == pytest.approx(1e-3 + 1e-3)

    def test_no_bandwidth_means_no_delay(self):
        sim, net, arrivals = build_net()
        net.broadcast(0, Pdu(0, 1, size=10 ** 6))
        sim.run()
        assert arrivals[0][0] == pytest.approx(1e-3)

    def test_larger_pdus_arrive_later(self):
        sim, net, arrivals = build_net(bandwidth_bytes_per_s=1e6)
        net.broadcast(0, Pdu(0, 1, size=100))
        net.broadcast(0, Pdu(0, 2, size=10_000))
        sim.run()
        assert arrivals[1][0] - arrivals[0][0] > 5e-3


class TestJitter:
    def test_jitter_requires_non_negative(self):
        with pytest.raises(ValueError):
            build_net(jitter=-1.0)

    def test_jitter_preserves_fifo(self):
        sim, net, arrivals = build_net(jitter=5e-3, rngs=RngRegistry(3))
        for seq in range(1, 30):
            net.broadcast(0, Pdu(0, seq, size=10))
        sim.run()
        seqs = [p.seq for _, p in arrivals]
        assert seqs == sorted(seqs), "jitter broke per-pair FIFO"
        times = [t for t, _ in arrivals]
        assert times == sorted(times)

    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            sim, net, arrivals = build_net(jitter=1e-3, rngs=RngRegistry(seed))
            for seq in range(1, 6):
                net.broadcast(0, Pdu(0, seq))
            sim.run()
            return [t for t, _ in arrivals]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_protocol_correct_over_jittery_network(self):
        rngs = RngRegistry(5)
        sim = Simulator()
        trace = TraceLog()
        net = MCNetwork(
            sim, trace, Topology.uniform(3, 2e-4),
            rngs=rngs, jitter=4e-4, bandwidth_bytes_per_s=5e6,
        )
        from repro.core.cluster import Cluster, CpuModel, EntityHost, buffer_free_fn
        from repro.core.entity import COEntity
        from repro.net.buffers import ReceiveBuffer

        config = ProtocolConfig()
        hosts = []
        for i in range(3):
            buffer = ReceiveBuffer(256)
            engine = COEntity(i, 3, config, clock=lambda: sim.now, trace=trace,
                              advertised_buf=buffer_free_fn(buffer))
            hosts.append(EntityHost(sim, trace, i, engine, net, buffer,
                                    CpuModel(), config.tick_interval))
        cluster = Cluster(sim, trace, net, hosts, config)
        cluster.start()
        for k in range(9):
            cluster.submit(k % 3, f"m{k}")
        cluster.run_until_quiescent(max_time=30.0)
        verify_run(trace, 3).assert_ok()


class TestClusterId:
    def test_foreign_cluster_pdus_ignored(self):
        driver = EngineDriver(0, 3)
        foreign = make_pdu(1, 1, (1, 1, 1))
        foreign = type(foreign)(
            cid=999, src=1, seq=1, ack=(1, 1, 1), buf=10**6, data="alien",
        )
        driver.receive(foreign)
        assert driver.engine.counters.foreign_cluster == 1
        assert driver.engine.counters.accepted == 0
        assert driver.engine.state.req[1] == 1

    def test_own_cluster_pdus_processed(self):
        driver = EngineDriver(0, 3)
        driver.receive(make_pdu(1, 1, (1, 1, 1)))
        assert driver.engine.counters.foreign_cluster == 0
        assert driver.engine.counters.accepted == 1
