"""Unit tests for gap tracking and retransmission suppression."""

from repro.core.retransmit import GapTracker, RetransmitSuppressor


class TestGapTracker:
    def test_new_gap_is_new_evidence(self):
        gaps = GapTracker(3)
        assert gaps.note(1, 5, now=0.0) is True
        assert gaps.open_gaps == 1
        assert gaps.detections == 1

    def test_same_evidence_not_new(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        assert gaps.note(1, 5, now=0.1) is False
        assert gaps.note(1, 4, now=0.1) is False
        assert gaps.detections == 1

    def test_widening_gap_is_new_evidence(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        assert gaps.note(1, 8, now=0.1) is True
        assert gaps.get(1).upto == 8

    def test_close_below(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        gaps.close_below(1, 4)   # still missing seq 4
        assert gaps.open_gaps == 1
        gaps.close_below(1, 5)   # caught up
        assert gaps.open_gaps == 0

    def test_gaps_per_source_independent(self):
        gaps = GapTracker(3)
        gaps.note(0, 3, now=0.0)
        gaps.note(2, 7, now=0.0)
        assert gaps.open_gaps == 2
        gaps.close_below(0, 3)
        assert gaps.open_gaps == 1
        assert gaps.get(2) is not None

    def test_due_respects_timeout(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        assert gaps.due(now=0.5, timeout=1.0) == []
        overdue = gaps.due(now=1.0, timeout=1.0)
        assert len(overdue) == 1 and overdue[0].src == 1

    def test_mark_ret_resets_retry_clock(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        gaps.mark_ret(1, now=0.9)
        assert gaps.due(now=1.5, timeout=1.0) == []
        assert gaps.due(now=2.0, timeout=1.0) != []

    def test_mark_ret_on_closed_gap_is_noop(self):
        gaps = GapTracker(3)
        gaps.mark_ret(1, now=0.0)  # no gap open
        assert gaps.open_gaps == 0


class TestRetransmitSuppressor:
    def test_first_request_allowed(self):
        sup = RetransmitSuppressor(interval=1.0)
        assert sup.should_send(3, now=0.0) is True

    def test_repeat_within_interval_suppressed(self):
        sup = RetransmitSuppressor(interval=1.0)
        sup.should_send(3, now=0.0)
        assert sup.should_send(3, now=0.5) is False
        assert sup.suppressed == 1

    def test_repeat_after_interval_allowed(self):
        sup = RetransmitSuppressor(interval=1.0)
        sup.should_send(3, now=0.0)
        assert sup.should_send(3, now=1.0) is True

    def test_different_seqs_independent(self):
        sup = RetransmitSuppressor(interval=1.0)
        sup.should_send(3, now=0.0)
        assert sup.should_send(4, now=0.0) is True

    def test_forget_below_prunes(self):
        sup = RetransmitSuppressor(interval=10.0)
        sup.should_send(1, now=0.0)
        sup.should_send(2, now=0.0)
        sup.forget_below(2)
        # Seq 1 forgotten: a new request for it is allowed again.
        assert sup.should_send(1, now=0.1) is True
        assert sup.should_send(2, now=0.1) is False


class TestRetBackoff:
    def test_default_cap_keeps_fixed_cadence(self):
        # backoff_cap=1 is the paper's fixed RET cadence: every retry waits
        # exactly one timeout.
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        for retry in range(1, 5):
            assert gaps.due(now=retry * 1.0, timeout=1.0) != []

    def test_first_retry_is_exact_timeout(self):
        gaps = GapTracker(3, backoff_cap=8, backoff_jitter=0.25)
        gaps.note(1, 5, now=0.0)
        assert gaps.due(now=0.99, timeout=1.0) == []
        assert len(gaps.due(now=1.0, timeout=1.0)) == 1

    def test_backoff_doubles_then_caps(self):
        gaps = GapTracker(3, backoff_cap=4)
        gaps.note(1, 5, now=0.0)
        t = 0.0
        waits = []
        for _ in range(5):
            lo = t
            # advance until the retry fires; record the wait
            while not gaps.due(now=t, timeout=1.0):
                t += 0.125
            waits.append(t - lo)
            gaps.get(1).last_ret_at = t
        assert waits == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_deterministic_and_bounded(self):
        a = GapTracker(3, backoff_cap=8, backoff_jitter=0.5, owner=1)
        b = GapTracker(3, backoff_cap=8, backoff_jitter=0.5, owner=1)
        for tracker in (a, b):
            tracker.note(0, 9, now=0.0)
            tracker.due(now=1.0, timeout=1.0)  # consume exact first retry
        wa = a._effective_timeout(a.get(0), 1.0)
        wb = b._effective_timeout(b.get(0), 1.0)
        assert wa == wb                       # same inputs, same jitter
        assert 2.0 <= wa <= 2.0 * 1.5         # 2^1 * (1 + jitter*frac)

    def test_jitter_spreads_across_owners(self):
        waits = set()
        for owner in range(6):
            tracker = GapTracker(3, backoff_cap=8, backoff_jitter=0.5, owner=owner)
            tracker.note(0, 9, now=0.0)
            tracker.due(now=1.0, timeout=1.0)
            waits.add(tracker._effective_timeout(tracker.get(0), 1.0))
        assert len(waits) > 1  # different survivors desynchronize

    def test_new_evidence_resets_backoff(self):
        gaps = GapTracker(3, backoff_cap=8)
        gaps.note(1, 5, now=0.0)
        for t in (1.0, 3.0):
            gaps.due(now=t, timeout=1.0)
        assert gaps.get(1).retries == 2
        gaps.note(1, 9, now=3.0)   # gap widened: source is reachable again
        assert gaps.get(1).retries == 0

    def test_total_retries_counter(self):
        gaps = GapTracker(3, backoff_cap=2)
        gaps.note(1, 5, now=0.0)
        gaps.note(2, 3, now=0.0)
        gaps.due(now=1.0, timeout=1.0)
        assert gaps.total_retries == 2

    def test_invalid_parameters_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            GapTracker(3, backoff_cap=0)
        with pytest.raises(ValueError):
            GapTracker(3, backoff_jitter=1.5)
