"""Unit tests for gap tracking and retransmission suppression."""

from repro.core.retransmit import GapTracker, RetransmitSuppressor


class TestGapTracker:
    def test_new_gap_is_new_evidence(self):
        gaps = GapTracker(3)
        assert gaps.note(1, 5, now=0.0) is True
        assert gaps.open_gaps == 1
        assert gaps.detections == 1

    def test_same_evidence_not_new(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        assert gaps.note(1, 5, now=0.1) is False
        assert gaps.note(1, 4, now=0.1) is False
        assert gaps.detections == 1

    def test_widening_gap_is_new_evidence(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        assert gaps.note(1, 8, now=0.1) is True
        assert gaps.get(1).upto == 8

    def test_close_below(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        gaps.close_below(1, 4)   # still missing seq 4
        assert gaps.open_gaps == 1
        gaps.close_below(1, 5)   # caught up
        assert gaps.open_gaps == 0

    def test_gaps_per_source_independent(self):
        gaps = GapTracker(3)
        gaps.note(0, 3, now=0.0)
        gaps.note(2, 7, now=0.0)
        assert gaps.open_gaps == 2
        gaps.close_below(0, 3)
        assert gaps.open_gaps == 1
        assert gaps.get(2) is not None

    def test_due_respects_timeout(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        assert gaps.due(now=0.5, timeout=1.0) == []
        overdue = gaps.due(now=1.0, timeout=1.0)
        assert len(overdue) == 1 and overdue[0].src == 1

    def test_mark_ret_resets_retry_clock(self):
        gaps = GapTracker(3)
        gaps.note(1, 5, now=0.0)
        gaps.mark_ret(1, now=0.9)
        assert gaps.due(now=1.5, timeout=1.0) == []
        assert gaps.due(now=2.0, timeout=1.0) != []

    def test_mark_ret_on_closed_gap_is_noop(self):
        gaps = GapTracker(3)
        gaps.mark_ret(1, now=0.0)  # no gap open
        assert gaps.open_gaps == 0


class TestRetransmitSuppressor:
    def test_first_request_allowed(self):
        sup = RetransmitSuppressor(interval=1.0)
        assert sup.should_send(3, now=0.0) is True

    def test_repeat_within_interval_suppressed(self):
        sup = RetransmitSuppressor(interval=1.0)
        sup.should_send(3, now=0.0)
        assert sup.should_send(3, now=0.5) is False
        assert sup.suppressed == 1

    def test_repeat_after_interval_allowed(self):
        sup = RetransmitSuppressor(interval=1.0)
        sup.should_send(3, now=0.0)
        assert sup.should_send(3, now=1.0) is True

    def test_different_seqs_independent(self):
        sup = RetransmitSuppressor(interval=1.0)
        sup.should_send(3, now=0.0)
        assert sup.should_send(4, now=0.0) is True

    def test_forget_below_prunes(self):
        sup = RetransmitSuppressor(interval=10.0)
        sup.should_send(1, now=0.0)
        sup.should_send(2, now=0.0)
        sup.forget_below(2)
        # Seq 1 forgotten: a new request for it is allowed again.
        assert sup.should_send(1, now=0.1) is True
        assert sup.should_send(2, now=0.1) is False
