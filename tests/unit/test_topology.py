"""Unit tests for delay topologies."""

import random

import pytest

from repro.net.topology import Topology


def test_uniform_delays():
    topo = Topology.uniform(4, 1e-3)
    for i in range(4):
        for j in range(4):
            expected = 0.0 if i == j else 1e-3
            assert topo.delay(i, j) == expected
    assert topo.max_delay == 1e-3


def test_uniform_single_entity():
    topo = Topology.uniform(1, 5e-4)
    assert topo.max_delay == 0.0
    assert topo.mean_delay == 0.0


def test_mean_delay():
    topo = Topology.from_matrix([[0.0, 2.0], [2.0, 0.0]])
    assert topo.mean_delay == 2.0


def test_from_matrix_validates_symmetry():
    with pytest.raises(ValueError):
        Topology.from_matrix([[0.0, 1.0], [2.0, 0.0]])


def test_from_matrix_validates_diagonal():
    with pytest.raises(ValueError):
        Topology.from_matrix([[1.0, 1.0], [1.0, 0.0]])


def test_from_matrix_validates_negative():
    with pytest.raises(ValueError):
        Topology.from_matrix([[0.0, -1.0], [-1.0, 0.0]])


def test_from_matrix_validates_shape():
    with pytest.raises(ValueError):
        Topology.from_matrix([[0.0, 1.0], [1.0]])


def test_empty_rejected():
    with pytest.raises(ValueError):
        Topology([])


def test_random_plane_properties():
    topo = Topology.random_plane(6, random.Random(1))
    assert topo.n == 6
    for i in range(6):
        assert topo.delay(i, i) == 0.0
        for j in range(6):
            assert topo.delay(i, j) == topo.delay(j, i)
            if i != j:
                assert topo.delay(i, j) >= 1e-5


def test_random_plane_deterministic():
    a = Topology.random_plane(4, random.Random(9))
    b = Topology.random_plane(4, random.Random(9))
    assert a.as_matrix() == b.as_matrix()


def test_from_graph_shortest_paths():
    nx = pytest.importorskip("networkx")
    graph = nx.Graph()
    graph.add_edge(0, 1, delay=1.0)
    graph.add_edge(1, 2, delay=2.0)
    topo = Topology.from_graph(graph)
    assert topo.delay(0, 2) == 3.0
    assert topo.max_delay == 3.0


def test_from_graph_disconnected_rejected():
    nx = pytest.importorskip("networkx")
    graph = nx.Graph()
    graph.add_nodes_from([0, 1, 2])
    graph.add_edge(0, 1, delay=1.0)
    with pytest.raises(ValueError):
        Topology.from_graph(graph)


def test_as_matrix_is_copy():
    topo = Topology.uniform(3, 1.0)
    matrix = topo.as_matrix()
    matrix[0][1] = 99.0
    assert topo.delay(0, 1) == 1.0
