"""Unit tests for the experiment-result export and config guards."""

import json

import pytest

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError
from repro.harness import ExperimentConfig, run_experiment


class TestResultExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(ExperimentConfig(n=3, messages_per_entity=4, seed=2))

    def test_to_dict_is_json_serialisable(self, result):
        record = result.to_dict()
        text = json.dumps(record)
        assert json.loads(text)["quiesced"] is True

    def test_to_dict_carries_config(self, result):
        record = result.to_dict()
        assert record["config"]["n"] == 3
        assert record["config"]["protocol"] == "co"

    def test_to_dict_headline_metrics(self, result):
        record = result.to_dict()
        assert record["tco"] > 0
        assert record["tap_mean"] > 0
        assert record["census"]["deliver"] == 36
        assert "[OK]" in record["verification"]

    def test_to_dict_excludes_live_objects(self, result):
        record = result.to_dict()
        assert "cluster" not in record
        assert "report" not in record

    def test_measured_tco_present(self, result):
        assert result.tco_measured > 0


class TestConfigGuards:
    def test_membership_requires_heartbeats(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(strict_paper_mode=True, suspect_timeout=0.02)

    def test_membership_with_default_mode_is_fine(self):
        config = ProtocolConfig(suspect_timeout=0.02)
        assert config.suspect_timeout == 0.02
