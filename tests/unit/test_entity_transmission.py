"""Unit tests for the transmission action and flow-control interaction (§4.2)."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.pdu import DataPdu
from tests.conftest import EngineDriver, make_pdu


def test_first_pdu_fields(driver):
    p = driver.submit("hello", size=5)
    assert p.src == 0
    assert p.seq == 1
    assert p.ack == (1, 1, 1)
    assert p.data == "hello"
    assert p.data_size == 5


def test_sequence_numbers_increment(driver):
    assert driver.submit("a").seq == 1
    assert driver.submit("b").seq == 2
    assert driver.submit("c").seq == 3


def test_ack_vector_snapshots_req(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.receive(make_pdu(2, 1, (1, 1, 1)))
    p = driver.submit("x")
    # Own component reflects prior self-accepted sends (none), others are 2.
    assert p.ack == (1, 2, 2)


def test_own_ack_component_equals_seq(driver):
    p1 = driver.submit("a")
    p2 = driver.submit("b")
    assert p1.ack[0] == p1.seq
    assert p2.ack[0] == p2.seq


def test_self_acceptance_advances_req(driver):
    driver.submit("a")
    assert driver.engine.state.req[0] == 2
    assert driver.engine.sl.next_seq == 2


def test_sending_log_records_pdus(driver):
    p = driver.submit("a")
    assert driver.engine.sl.get(1) is p


def test_window_blocks_excess_submissions():
    drv = EngineDriver(0, 3, ProtocolConfig(window=2))
    drv.submit("a")
    drv.submit("b")
    blocked = drv.submit("c")
    assert blocked is None
    assert drv.engine.pending_requests == 1
    assert drv.engine.counters.flow_blocked == 1


def test_window_reopens_on_confirmation():
    drv = EngineDriver(0, 3, ProtocolConfig(window=2))
    drv.submit("a")
    drv.submit("b")
    drv.submit("c")
    assert len(drv.data_sent) == 2
    # Peers confirm acceptance of seq 1-2: window slides, c goes out.
    drv.receive(make_pdu(1, 1, (3, 1, 1)))
    drv.receive(make_pdu(2, 1, (3, 1, 1)))
    assert len(drv.data_sent) == 3
    assert drv.data_sent[-1].data == "c"


def test_buffer_advertisement_in_pdu():
    drv = EngineDriver(0, 3, buf=12345)
    assert drv.submit("a").buf == 12345


def test_submit_none_rejected(driver):
    with pytest.raises(ValueError):
        driver.engine.submit(None)


def test_counters_track_sent_data(driver):
    driver.submit("a")
    driver.submit("b")
    assert driver.engine.counters.submitted == 2
    assert driver.engine.counters.sent_data == 2
    assert driver.engine.counters.sent_null == 0


def test_engine_unusable_before_bind():
    from repro.core.entity import COEntity
    from repro.core.errors import ProtocolError
    from repro.sim.trace import TraceLog

    engine = COEntity(0, 3, ProtocolConfig(), clock=lambda: 0.0, trace=TraceLog())
    with pytest.raises(ProtocolError):
        engine.submit("x")


def test_fifo_submission_order_preserved():
    drv = EngineDriver(0, 3, ProtocolConfig(window=1))
    drv.submit("a")
    drv.submit("b")
    drv.submit("c")
    # Confirm one at a time and watch b, c leave in order.
    drv.receive(make_pdu(1, 1, (2, 1, 1)))
    drv.receive(make_pdu(2, 1, (2, 1, 1)))
    assert [p.data for p in drv.data_sent] == ["a", "b"]
    drv.receive(make_pdu(1, 2, (3, 2, 1)))
    drv.receive(make_pdu(2, 2, (3, 2, 2)))
    assert [p.data for p in drv.data_sent] == ["a", "b", "c"]
