"""Unit tests for the gray-failure injectors: per-link delay models
(:mod:`repro.net.delay`) and the host-level pause/resume and CPU-scaling
hooks the nemesis scenarios drive."""

import random

import pytest

from repro.core.cluster import build_cluster
from repro.core.config import ProtocolConfig
from repro.net.delay import Composite, DelayModel, JitterDelay, LinkDelay
from repro.sim.rng import RngRegistry

RNG = random.Random(7)


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
def test_base_model_adds_nothing():
    assert DelayModel().extra_delay(0, 1, None, RNG) == 0.0


def test_link_delay_is_directional():
    link = LinkDelay()
    link.set_link(0, 1, 0.01)
    assert link.extra_delay(0, 1, None, RNG) == 0.01
    assert link.extra_delay(1, 0, None, RNG) == 0.0
    assert link.delayed_copies == 1


def test_link_delay_set_out_and_into():
    link = LinkDelay()
    link.set_out(2, range(4), 0.005)
    assert link.extra_delay(2, 0, None, RNG) == 0.005
    assert link.extra_delay(2, 2, None, RNG) == 0.0   # self skipped
    assert link.extra_delay(0, 2, None, RNG) == 0.0
    link.clear()
    link.set_into(2, range(4), 0.007)
    assert link.extra_delay(0, 2, None, RNG) == 0.007
    assert link.extra_delay(2, 0, None, RNG) == 0.0


def test_link_delay_zero_removes_and_negative_rejected():
    link = LinkDelay()
    link.set_link(0, 1, 0.01)
    link.set_link(0, 1, 0.0)
    assert link.extra_delay(0, 1, None, RNG) == 0.0
    with pytest.raises(ValueError):
        link.set_link(0, 1, -1.0)


def test_jitter_delay_scoped_and_seeded():
    with pytest.raises(ValueError):
        JitterDelay(0.0)
    jitter = JitterDelay(0.001, links=[(0, 1)])
    a = jitter.extra_delay(0, 1, None, random.Random(3))
    b = jitter.extra_delay(0, 1, None, random.Random(3))
    assert a == b > 0.0
    assert jitter.extra_delay(1, 0, None, RNG) == 0.0
    assert jitter.draws == 2


def test_composite_sums_models():
    link = LinkDelay()
    link.set_link(0, 1, 0.01)
    other = LinkDelay()
    other.set_link(0, 1, 0.02)
    combo = Composite(link, other)
    assert combo.extra_delay(0, 1, None, RNG) == pytest.approx(0.03)


# ----------------------------------------------------------------------
# Network integration: FIFO clamp turns a spike into a silent window
# ----------------------------------------------------------------------
def test_delayed_copies_stay_fifo_per_link():
    link = LinkDelay()
    cluster = build_cluster(2, delay_model=link, rngs=RngRegistry(1))
    arrivals = []
    sink = cluster.network._sinks[1]
    cluster.network._sinks[1] = lambda pdu: (arrivals.append(cluster.sim.now), sink(pdu))
    link.set_link(0, 1, 0.05)
    cluster.submit(0, "spiked")
    cluster.sim.schedule(0.001, lambda: link.set_link(0, 1, 0.0))
    cluster.sim.schedule(0.002, lambda: cluster.submit(0, "behind"))
    cluster.run_for(0.2)
    data_arrivals = arrivals[:2]
    # The spiked copy arrived ~50ms late; the undelayed copy behind it was
    # clamped to the same horizon instead of overtaking (silent window).
    assert data_arrivals[0] >= 0.05
    assert data_arrivals[1] >= data_arrivals[0]
    assert [m.data for m in cluster.delivered(1)] == ["spiked", "behind"]


# ----------------------------------------------------------------------
# Host hooks: pause/resume and CPU scaling
# ----------------------------------------------------------------------
def test_pause_buffers_arrivals_and_resume_drains():
    cluster = build_cluster(2, rngs=RngRegistry(1))
    cluster.pause(1)
    assert cluster.hosts[1].paused
    cluster.submit(0, "while-paused")
    cluster.run_for(0.05)
    assert cluster.delivered(1) == []                  # frozen, not crashed
    assert not cluster.hosts[1].buffer.empty           # arrivals queued
    cluster.resume(1)
    cluster.run_until_quiescent(max_time=5.0)
    assert [m.data for m in cluster.delivered(1)] == ["while-paused"]


def test_paused_host_stops_ticking():
    config = ProtocolConfig(suspect_timeout=0.05)
    cluster = build_cluster(2, config=config, rngs=RngRegistry(1))
    cluster.run_for(0.02)
    cluster.pause(0)
    sent_before = cluster.network.stats.copies_sent
    cluster.run_for(0.2)
    # No keepalives from the paused host: its peer suspects it.
    assert 0 in cluster.hosts[1].engine.suspected
    cluster.resume(0)
    cluster.run_for(0.2)
    assert 0 not in cluster.hosts[1].engine.suspected
    assert cluster.network.stats.copies_sent > sent_before


def test_pause_guards_are_idempotent_noops():
    cluster = build_cluster(2, rngs=RngRegistry(1))
    cluster.crash(0)
    cluster.pause(0)                      # crashed: pause is a no-op
    assert not cluster.hosts[0].paused
    cluster.resume(0)                     # not paused: resume is a no-op
    assert cluster.hosts[0].crashed
    cluster.pause(1)
    cluster.pause(1)                      # double pause: no-op
    assert cluster.hosts[1].paused


def test_cpu_scale_inflates_service_time():
    cluster = build_cluster(2, rngs=RngRegistry(1))
    cluster.set_cpu_scale(1, 50.0)
    with pytest.raises(ValueError):
        cluster.set_cpu_scale(1, 0.0)
    cluster.submit(0, "slow-path")
    cluster.run_until_quiescent(max_time=10.0)
    busy = [cluster.hosts[i].busy_time for i in range(2)]
    assert busy[1] > 10 * busy[0]
    assert [m.data for m in cluster.delivered(1)] == ["slow-path"]
