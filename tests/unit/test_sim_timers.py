"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_interval(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]

    def test_does_not_fire_unless_started(self):
        sim = Simulator()
        fired = []
        Timer(sim, 2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == []

    def test_restart_replaces_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.0, timer.start)  # watchdog kick at t=1
        sim.run()
        assert fired == [3.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_custom_interval_on_start(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start(interval=0.5)
        sim.run()
        assert fired == [0.5]

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, 1.0, lambda: None)
        assert not timer.armed
        timer.start()
        assert timer.armed
        sim.run()
        assert not timer.armed

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            Timer(Simulator(), -1.0, lambda: None)


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_callback_can_stop_timer(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: (fired.append(sim.now), timer.stop()))
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0]

    def test_start_is_idempotent(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        timer.start()
        sim.run(until=2.5)
        assert fired == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)

    def test_running_property(self):
        timer = PeriodicTimer(Simulator(), 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
