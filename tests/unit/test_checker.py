"""Unit tests for the run-verification checker itself.

The checker guards every integration test, so it gets direct tests: it must
*fail* on traces with planted violations, not just pass on good ones.
"""

import pytest

from repro.core.errors import DeliveryOrderError
from repro.ordering.checker import count_causal_anomalies, verify_run
from repro.sim.trace import TraceLog


def clean_trace():
    """E0 sends m1; E1 relays m2; both delivered causally at everyone."""
    t = TraceLog()
    t.record(0.0, "broadcast", 0, kind="DataPdu", seq=1)
    t.record(0.0, "accept", 0, src=0, seq=1, null=False)
    t.record(0.1, "accept", 1, src=0, seq=1, null=False)
    t.record(0.2, "broadcast", 1, kind="DataPdu", seq=1)
    t.record(0.2, "accept", 1, src=1, seq=1, null=False)
    t.record(0.3, "accept", 0, src=1, seq=1, null=False)
    for entity in (0, 1):
        t.record(0.4, "deliver", entity, src=0, seq=1)
        t.record(0.5, "deliver", entity, src=1, seq=1)
    return t


def test_clean_trace_passes():
    report = verify_run(clean_trace(), 2)
    assert report.ok
    report.assert_ok()
    assert report.messages_sent == 2
    assert report.deliveries == [2, 2]


def test_causality_violation_detected():
    t = clean_trace()
    # Entity 0 also delivers them inverted at a third entity... plant an
    # inversion by appending a reversed pair at a new entity index.
    t.record(0.6, "deliver", 1, src=1, seq=1)  # duplicate to keep it simple
    report = verify_run(t, 2)
    assert not report.ok
    assert report.duplicates
    with pytest.raises(DeliveryOrderError):
        report.assert_ok()


def test_inverted_delivery_is_causality_violation():
    t = TraceLog()
    t.record(0.0, "broadcast", 0, kind="DataPdu", seq=1)
    t.record(0.0, "accept", 0, src=0, seq=1, null=False)
    t.record(0.1, "accept", 1, src=0, seq=1, null=False)
    t.record(0.2, "broadcast", 1, kind="DataPdu", seq=1)
    t.record(0.2, "accept", 1, src=1, seq=1, null=False)
    t.record(0.3, "accept", 2, src=1, seq=1, null=False)
    t.record(0.4, "accept", 2, src=0, seq=1, null=False)
    # Entity 2 delivers the *reply* before the message it answers.
    t.record(0.5, "deliver", 2, src=1, seq=1)
    t.record(0.6, "deliver", 2, src=0, seq=1)
    report = verify_run(t, 3, expect_all_delivered=False)
    assert report.causality == {2: [((1, 1), (0, 1))]}
    assert count_causal_anomalies(t, 3) == 1


def test_missing_delivery_detected():
    t = clean_trace()
    t.record(0.7, "broadcast", 0, kind="DataPdu", seq=2)
    t.record(0.7, "accept", 0, src=0, seq=2, null=False)
    report = verify_run(t, 2)
    assert not report.ok
    assert (0, 2) in report.missing[0]
    assert (0, 2) in report.missing[1]


def test_missing_not_flagged_when_relaxed():
    t = clean_trace()
    t.record(0.7, "broadcast", 0, kind="DataPdu", seq=2)
    t.record(0.7, "accept", 0, src=0, seq=2, null=False)
    report = verify_run(t, 2, expect_all_delivered=False)
    assert report.ok


def test_fifo_violation_detected():
    t = TraceLog()
    t.record(0.0, "broadcast", 0, kind="DataPdu", seq=1)
    t.record(0.1, "broadcast", 0, kind="DataPdu", seq=2)
    t.record(0.2, "deliver", 1, src=0, seq=2)
    t.record(0.3, "deliver", 1, src=0, seq=1)
    report = verify_run(t, 2, expect_all_delivered=False)
    assert report.local_order[1]
    # Same-source inversion is both a FIFO and a causality violation.
    assert report.causality[1]


def test_summary_format():
    summary = verify_run(clean_trace(), 2).summary()
    assert "[OK]" in summary and "sent=2" in summary
