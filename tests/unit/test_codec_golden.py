"""Golden-frame pins for the wire codec.

These hex strings were captured from the codec as of PR 4 (bytes-concat
encoder).  The flat-array/zero-copy rework (ROADMAP item 2) must keep
every frame byte-identical — docs/PROTOCOL.md promises the wire format
is stable, and mixed-version clusters depend on it.  If a test here
fails, the wire format changed: that is a protocol break, not a test to
update casually.
"""

import pytest

from repro.core.codec import decode_pdu, encode_pdu
from repro.core.pdu import (
    BatchPdu,
    DataPdu,
    DigestPdu,
    HeartbeatPdu,
    InterGroupPdu,
    JoinPdu,
    RelayPdu,
    RepairPullPdu,
    RetPdu,
    StatePdu,
    ViewChangePdu,
)

_N = 8
_ACK = tuple(range(1, _N + 1))
_PACK = tuple(range(2, _N + 2))


def _pdus():
    return {
        "data": DataPdu(cid=7, src=3, seq=42, ack=_ACK, buf=512,
                        data=b"payload-bytes", data_size=13),
        "data_null": DataPdu(cid=7, src=3, seq=43, ack=_ACK, buf=512,
                             data=None),
        "ret": RetPdu(cid=7, src=1, lsrc=4, lseq=99, ack=_ACK, buf=64),
        "heartbeat": HeartbeatPdu(cid=7, src=2, ack=_ACK, pack=_PACK,
                                  buf=31, probe=True, view=3),
        "viewchange": ViewChangePdu(cid=7, src=0, view=2, phase="install",
                                    members=(0, 1, 2, 4, 5, 6, 7),
                                    ack=_ACK, buf=16, flush=_PACK),
        "join": JoinPdu(cid=7, src=5, buf=100, ready=True),
        "state": StatePdu(cid=7, src=0, joiner=5, view=2,
                          members=(0, 1, 2, 3, 4, 6, 7),
                          ack=_ACK, pack=_PACK, buf=40,
                          prefix=((0, 1), (3, 2), (7, 9))),
        # The acceptance-critical frame: a batch of 8 inner DataPdus with
        # per-inner ACK vectors and payloads of varying size.
        "batch8": BatchPdu(cid=7, src=3, ack=_ACK, pack=_PACK, buf=256,
                           pdus=tuple(
                               DataPdu(cid=7, src=3, seq=s,
                                       ack=tuple(min(a, s + i)
                                                 for i, a in enumerate(_ACK)),
                                       buf=200 + s,
                                       data=bytes([65 + s]) * s, data_size=s)
                               for s in range(40, 48)
                           )),
        "batch_empty": BatchPdu(cid=7, src=3, ack=_ACK, pack=_PACK, buf=256,
                                pdus=()),
        # Dissemination extension frame (PR 8): a relay wrapper carrying
        # another member's DataPdu/BatchPdu verbatim plus the relaying
        # path's aggregated knowledge minima.
        "relay_data": RelayPdu(
            cid=7, src=6, path=(3, 1, 6), min_ack=_ACK, min_pack=_PACK,
            buf=128,
            frame=DataPdu(cid=7, src=3, seq=42, ack=_ACK, buf=512,
                          data=b"payload-bytes", data_size=13)),
        "relay_batch": RelayPdu(
            cid=7, src=1, path=(3, 1), min_ack=_ACK, min_pack=_PACK,
            buf=96,
            frame=BatchPdu(cid=7, src=3, ack=_ACK, pack=_PACK, buf=256,
                           pdus=tuple(
                               DataPdu(cid=7, src=3, seq=s,
                                       ack=tuple(min(a, s + i)
                                                 for i, a in enumerate(_ACK)),
                                       buf=200 + s,
                                       data=bytes([65 + s]) * s, data_size=s)
                               for s in range(40, 42)
                           ))),
        # Repair extension frames (PR 7): anti-entropy digest and range pull.
        "digest": DigestPdu(cid=7, src=2, target=5, view=3, ack=_ACK,
                            delivered=_PACK, buf=77),
        "repair_pull": RepairPullPdu(cid=7, src=1, target=6,
                                     ranges=((4, 2, 9), (0, 1, 3), (7, 5, 6)),
                                     ack=_ACK, buf=33),
        # Hierarchy extension frames (PROTOCOL.md §18): the inter-group
        # barrier PDU with payload, with a null payload, and as a
        # cumulative stream ack.
        "intergroup": InterGroupPdu(cid=7, origin_group=1, sender_group=2,
                                    src=11, seq=5, gseq=9,
                                    barrier=(3, 0, 7, 2), buf=64,
                                    data=b"bridge-bytes", data_size=12),
        "intergroup_null": InterGroupPdu(cid=7, origin_group=0,
                                         sender_group=2, src=4, seq=2,
                                         gseq=3, barrier=(1, 1, 0), buf=32,
                                         data=None, data_size=0),
        "intergroup_ack": InterGroupPdu(cid=7, origin_group=1,
                                        sender_group=0, src=0, seq=1,
                                        gseq=6, barrier=(), buf=16,
                                        ack=True),
    }


GOLDEN = {
    "data": "01000000000700030000002a00080000000100000002000000030000000400000005000000060000000700000008000002000000000d7061796c6f61642d62797465738f060569",
    "data_null": "01010000000700030000002b000800000001000000020000000300000004000000050000000600000007000000080000020000000000c7e84261",
    "ret": "02000000000700010004000000630008000000010000000200000003000000040000000500000006000000070000000800000040b9e1a35a",
    "heartbeat": "03010000000700020008000000010000000200000003000000040000000500000006000000070000000800000002000000030000000400000005000000060000000700000008000000090000001f000000036d43ac2d",
    "viewchange": "04020000000700000000000200070008000800000001000200040005000600070000000100000002000000030000000400000005000000060000000700000008000000020000000300000004000000050000000600000007000000080000000900000010141c1d6f",
    "join": "05010000000700050000006465607a00",
    "state": "06000000000700000005000000020007000800000003000000010002000300040006000700000001000000020000000300000004000000050000000600000007000000080000000200000003000000040000000500000006000000070000000800000009000000000001000300000002000700000009000000280584c7ce",
    "batch8": "07000000000700030008000800000001000000020000000300000004000000050000000600000007000000080000000200000003000000040000000500000006000000070000000800000009000001000000005e01000000000700030000002800080000000100000002000000030000000400000005000000060000000700000008000000f000000028696969696969696969696969696969696969696969696969696969696969696969696969696969690000005f01000000000700030000002900080000000100000002000000030000000400000005000000060000000700000008000000f1000000296a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a0000006001000000000700030000002a00080000000100000002000000030000000400000005000000060000000700000008000000f20000002a6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b6b0000006101000000000700030000002b00080000000100000002000000030000000400000005000000060000000700000008000000f30000002b6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c6c0000006201000000000700030000002c00080000000100000002000000030000000400000005000000060000000700000008000000f40000002c6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d6d0000006301000000000700030000002d00080000000100000002000000030000000400000005000000060000000700000008000000f50000002d6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e6e0000006401000000000700030000002e00080000000100000002000000030000000400000005000000060000000700000008000000f60000002e6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f6f0000006501000000000700030000002f00080000000100000002000000030000000400000005000000060000000700000008000000f70000002f7070707070707070707070707070707070707070707070707070707070707070707070707070707070707070707070908a9dd5",
    "batch_empty": "0700000000070003000800000000000100000002000000030000000400000005000000060000000700000008000000020000000300000004000000050000000600000007000000080000000900000100d69508fa",
    "relay_data": "0a000000000700060003000800030001000600000001000000020000000300000004000000050000000600000007000000080000000200000003000000040000000500000006000000070000000800000009000000800000004301000000000700030000002a00080000000100000002000000030000000400000005000000060000000700000008000002000000000d7061796c6f61642d62797465733ef526f7",
    "relay_batch": "0a00000000070001000200080003000100000001000000020000000300000004000000050000000600000007000000080000000200000003000000040000000500000006000000070000000800000009000000600000011507000000000700030008000200000001000000020000000300000004000000050000000600000007000000080000000200000003000000040000000500000006000000070000000800000009000001000000005e01000000000700030000002800080000000100000002000000030000000400000005000000060000000700000008000000f000000028696969696969696969696969696969696969696969696969696969696969696969696969696969690000005f01000000000700030000002900080000000100000002000000030000000400000005000000060000000700000008000000f1000000296a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a6a9ca00ca7",
    "digest": "08000000000700020005000000030008000000010000000200000003000000040000000500000006000000070000000800000002000000030000000400000005000000060000000700000008000000090000004d8873d2a4",
    "repair_pull": "0900000000070001000600080003000000010000000200000003000000040000000500000006000000070000000800040000000200000009000000000001000000030007000000050000000600000021858a173f",
    "intergroup": "0b000000000700010002000b0000000500000009000400000003000000000000000700000002000000400000000c6272696467652d62797465734638cded",
    "intergroup_null": "0b0200000007000000020004000000020000000300030000000100000001000000000000002000000000f7cbebdf",
    "intergroup_ack": "0b01000000070001000000000000000100000006000000000010000000007b594cdd",
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_encode_matches_golden_frame(name):
    pdu = _pdus()[name]
    assert encode_pdu(pdu).hex() == GOLDEN[name], (
        f"wire format changed for {name!r} — this breaks mixed-version "
        f"clusters; see docs/PROTOCOL.md"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_frame_decodes_to_original(name):
    pdu = _pdus()[name]
    decoded = decode_pdu(bytes.fromhex(GOLDEN[name]))
    assert decoded == pdu
