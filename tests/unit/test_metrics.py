"""Unit tests for lifecycle collection, stats and reporting."""

import pytest

from repro.metrics.collector import collect_lifecycles, latency_samples, pdu_census
from repro.metrics.reporting import bar_chart, format_series, format_table
from repro.metrics.stats import growth_ratio, linear_fit, summarize
from repro.sim.trace import TraceLog


def lifecycle_trace():
    t = TraceLog()
    t.record(0.0, "submit", 0, size=10)
    t.record(0.1, "broadcast", 0, kind="DataPdu", seq=1)
    t.record(0.1, "accept", 0, src=0, seq=1, null=False)
    t.record(1.0, "accept", 1, src=0, seq=1, null=False)
    t.record(2.0, "preack", 1, src=0, seq=1)
    t.record(3.0, "ack", 1, src=0, seq=1)
    t.record(3.0, "deliver", 1, src=0, seq=1)
    return t


class TestCollector:
    def test_lifecycle_fields(self):
        lc = collect_lifecycles(lifecycle_trace())[(0, 1)]
        assert lc.submit_time == 0.0
        assert lc.broadcast_time == 0.1
        assert lc.accept_times == {0: 0.1, 1: 1.0}
        assert lc.preack_times == {1: 2.0}
        assert lc.ack_times == {1: 3.0}
        assert lc.deliver_times == {1: 3.0}

    def test_delivery_latency(self):
        lc = collect_lifecycles(lifecycle_trace())[(0, 1)]
        assert lc.delivery_latency(1) == pytest.approx(3.0)
        assert lc.delivery_latency(2) is None
        assert lc.max_delivery_latency() == pytest.approx(3.0)

    def test_span_latencies(self):
        lc = collect_lifecycles(lifecycle_trace())[(0, 1)]
        assert lc.preack_after_accept(1) == pytest.approx(1.0)
        assert lc.ack_after_accept(1) == pytest.approx(2.0)
        assert lc.preack_after_accept(0) is None

    def test_retransmission_keeps_first_broadcast_time(self):
        t = lifecycle_trace()
        t.record(5.0, "broadcast", 0, kind="DataPdu", seq=1)
        lc = collect_lifecycles(t)[(0, 1)]
        assert lc.broadcast_time == 0.1

    def test_latency_samples(self):
        lifecycles = collect_lifecycles(lifecycle_trace())
        delivery = latency_samples(lifecycles, "delivery")
        assert len(delivery) == 1
        assert delivery[0].value == pytest.approx(3.0)
        assert latency_samples(lifecycles, "ack")[0].value == pytest.approx(2.0)
        with pytest.raises(ValueError):
            latency_samples(lifecycles, "bogus")

    def test_pdu_census(self):
        census = pdu_census(lifecycle_trace())
        assert census["broadcast"] == 1
        assert census["accept"] == 2
        assert census["deliver"] == 1


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0 and s.mean == 0.0

    def test_summary_scaled(self):
        s = summarize([1.0, 3.0]).scaled(1000)
        assert s.mean == pytest.approx(2000)
        assert s.count == 2

    def test_linear_fit_exact(self):
        fit = linear_fit([1, 2, 3], [2.0, 4.0, 6.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(20.0)

    def test_linear_fit_constant_series(self):
        fit = linear_fit([1, 2, 3], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == 1.0

    def test_linear_fit_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_growth_ratio_shapes(self):
        xs = [2, 4, 8]
        assert growth_ratio(xs, [2, 4, 8]) == pytest.approx(1.0)       # linear
        assert growth_ratio(xs, [4, 16, 64]) == pytest.approx(4.0)     # quadratic
        assert growth_ratio(xs, [3, 3, 3]) == pytest.approx(0.25)      # constant


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["n", "value"], [[2, 0.5], [10, 1.25]])
        lines = text.splitlines()
        assert lines[0].startswith("n")
        assert len(lines) == 4
        assert "10" in lines[3]

    def test_format_table_title_and_validation(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series([1, 2], [[10, 20], [30, 40]], "x", ["y1", "y2"])
        assert "y1" in text and "40" in text
        with pytest.raises(ValueError):
            format_series([1], [[1, 2]], "x", ["y"])

    def test_bar_chart(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "#" not in text


class TestHotPathStats:
    def test_ratios_from_counters(self):
        from repro.metrics.collector import hot_path_stats

        stats = hot_path_stats({
            "accepted": 100,
            "preacknowledged": 50,
            "pack_source_scans": 120,
            "pack_dep_blocks": 5,
            "cpi_fast_appends": 48,
            "cpi_scan_inserts": 2,
        })
        assert stats["pack_source_scans"] == 120.0
        assert stats["pack_source_scans_per_accept"] == pytest.approx(1.2)
        assert stats["cpi_fast_append_ratio"] == pytest.approx(0.96)
        assert stats["dep_blocks_per_preack"] == pytest.approx(0.1)

    def test_tolerates_pre_counter_snapshots(self):
        """Snapshots from runs predating the counters must not crash."""
        from repro.metrics.collector import hot_path_stats

        stats = hot_path_stats({"accepted": 0})
        assert stats == {
            "pack_source_scans": 0.0,
            "pack_source_scans_per_accept": 0.0,
            "cpi_fast_append_ratio": 0.0,
            "dep_blocks_per_preack": 0.0,
            "ret_retries": 0.0,
        }

    def test_engine_counters_expose_hot_path_fields(self):
        from tests.conftest import EngineDriver, make_pdu

        drv = EngineDriver(0, 3)
        drv.receive(make_pdu(1, 1, (1, 1, 1)))
        drv.receive(make_pdu(2, 1, (1, 2, 1)))
        snap = drv.engine.counters.snapshot()
        for key in ("pack_source_scans", "pack_dep_blocks",
                    "cpi_fast_appends", "cpi_scan_inserts"):
            assert key in snap
        assert snap["pack_source_scans"] >= 1
