"""Unit tests for the PO (FIFO) and unordered baselines."""

from repro.baselines.po_protocol import PoEntity, PoPdu, PoRetPdu
from repro.baselines.unordered import RawMessage, UnorderedEntity


class Driver:
    def __init__(self, engine_cls, index, n, **kw):
        self.clock = 0.0
        self.sent = []
        self.delivered = []
        self.engine = engine_cls(index, n, clock=lambda: self.clock, **kw)
        self.engine.bind(send=self.sent.append, deliver=self.delivered.append)


class TestPoEntity:
    def test_submit_self_delivers(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.submit("a")
        assert [m.data for m in d.delivered] == ["a"]
        assert d.sent[0].seq == 1

    def test_in_order_delivery_immediate(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.on_pdu(PoPdu(1, 1, "x"))
        assert [m.data for m in d.delivered] == ["x"]

    def test_gap_stashes_and_naks(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.on_pdu(PoPdu(1, 2, "second"))
        assert d.delivered == []
        naks = [p for p in d.sent if isinstance(p, PoRetPdu)]
        assert len(naks) == 1
        assert naks[0].lsrc == 1 and naks[0].from_seq == 1 and naks[0].upto == 2

    def test_recovery_drains_stash(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.on_pdu(PoPdu(1, 2, "b"))
        d.engine.on_pdu(PoPdu(1, 1, "a"))
        assert [m.data for m in d.delivered] == ["a", "b"]
        assert d.engine.quiescent

    def test_duplicate_ignored(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.on_pdu(PoPdu(1, 1, "x"))
        d.engine.on_pdu(PoPdu(1, 1, "x"))
        assert len(d.delivered) == 1

    def test_nak_answered_by_source(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.submit("a")
        d.engine.submit("b")
        before = len(d.sent)
        d.engine.on_pdu(PoRetPdu(src=1, lsrc=0, from_seq=1, upto=3))
        resent = [p for p in d.sent[before:] if isinstance(p, PoPdu)]
        assert [p.seq for p in resent] == [1, 2]
        assert d.engine.retransmissions == 2

    def test_nak_for_other_source_ignored(self):
        d = Driver(PoEntity, 0, 3)
        d.engine.submit("a")
        before = len(d.sent)
        d.engine.on_pdu(PoRetPdu(src=1, lsrc=2, from_seq=1, upto=2))
        assert len(d.sent) == before

    def test_nak_retry_on_tick(self):
        d = Driver(PoEntity, 0, 3, nak_timeout=0.5)
        d.engine.on_pdu(PoPdu(1, 3, "late"))
        naks = lambda: [p for p in d.sent if isinstance(p, PoRetPdu)]
        assert len(naks()) == 1
        d.clock = 1.0
        d.engine.on_tick()
        assert len(naks()) == 2

    def test_no_causal_ordering_across_sources(self):
        # PO delivers per-source FIFO immediately — a causally-later PDU from
        # another source is delivered before its predecessor arrives.
        d = Driver(PoEntity, 0, 3)
        d.engine.on_pdu(PoPdu(2, 1, "reply"))
        d.engine.on_pdu(PoPdu(1, 1, "original"))
        assert [m.data for m in d.delivered] == ["reply", "original"]


class TestUnorderedEntity:
    def test_delivers_everything_in_arrival_order(self):
        d = Driver(UnorderedEntity, 0, 3)
        d.engine.on_pdu(RawMessage(1, 2, "b"))
        d.engine.on_pdu(RawMessage(1, 1, "a"))
        assert [m.data for m in d.delivered] == ["b", "a"]

    def test_submit_broadcasts_and_self_delivers(self):
        d = Driver(UnorderedEntity, 0, 3)
        d.engine.submit("x")
        assert len(d.sent) == 1
        assert [m.data for m in d.delivered] == ["x"]

    def test_always_quiescent(self):
        d = Driver(UnorderedEntity, 0, 3)
        assert d.engine.quiescent
