"""Unit tests for the acceptance action and the two-phase machinery
(§4.2, §4.4, §4.5) driven PDU by PDU."""

from repro.core.config import DeliveryLevel, ProtocolConfig
from tests.conftest import EngineDriver, make_pdu


def test_in_order_pdu_accepted(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1), data="m"))
    assert driver.engine.state.req[1] == 2
    assert driver.engine.rrl.total == 1
    assert driver.engine.counters.accepted == 1


def test_duplicate_discarded(driver):
    p = make_pdu(1, 1, (1, 1, 1))
    driver.receive(p)
    driver.receive(p)
    assert driver.engine.counters.accepted == 1
    assert driver.engine.counters.duplicates == 1
    assert driver.engine.rrl.total == 1


def test_acceptance_merges_al_row(driver):
    driver.receive(make_pdu(1, 1, (4, 1, 3)))
    assert driver.engine.state.al[1] == [4, 1, 3]


def test_acceptance_updates_buf(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1), buf=77))
    assert driver.engine.state.buf[1] == 77


def test_own_al_row_mirrors_req(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.receive(make_pdu(2, 1, (1, 1, 1)))
    assert driver.engine.state.al[0] == driver.engine.state.req


def test_not_delivered_before_acknowledgment(driver):
    """On acceptance an entity 'does not yet know if another entity has also
    received p' — no delivery yet (§4.2)."""
    driver.receive(make_pdu(1, 1, (1, 1, 1), data="early"))
    assert driver.delivered == []


def test_preack_needs_evidence_from_everyone(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1), data="m"))      # accept
    # Evidence from E1 alone (its own next PDU) is not enough.
    driver.receive(make_pdu(1, 2, (1, 2, 1)))
    assert len(driver.engine.prl) == 0
    # E2's PDU confirms it also accepted (1,1): ack[1] == 2 everywhere now.
    driver.receive(make_pdu(2, 1, (1, 2, 1)))
    # minAL_1 = min(own req=3?, ...) -- own row req[1]=3 after two accepts;
    # AL[1][1]=2 from E1's second PDU; AL[2][1]=2 from E2's PDU.
    assert (1, 1) in [p.pdu_id for p in driver.engine.prl]


def test_full_two_phase_delivery_via_heartbeats(driver):
    from repro.core.pdu import HeartbeatPdu

    driver.receive(make_pdu(1, 1, (1, 1, 1), data="m"))
    # Everyone (including us, via self state) has accepted; simulate the two
    # heartbeat rounds a live cluster would run.
    hb = lambda src, ack, pack: HeartbeatPdu(cid=1, src=src, ack=ack, pack=pack, buf=10**6)
    driver.receive(hb(1, (1, 2, 1), (1, 1, 1)))
    driver.receive(hb(2, (1, 2, 1), (1, 1, 1)))
    assert [p.pdu_id for p in driver.engine.prl] == [(1, 1)]
    assert driver.delivered == []   # pre-acked, not yet acked
    driver.receive(hb(1, (1, 2, 1), (1, 2, 1)))
    driver.receive(hb(2, (1, 2, 1), (1, 2, 1)))
    assert driver.delivered_payloads == ["m"]
    assert driver.engine.counters.acknowledged == 1


def test_delivery_at_preack_level_ablation():
    from repro.core.pdu import HeartbeatPdu

    drv = EngineDriver(0, 3, ProtocolConfig(delivery_level=DeliveryLevel.PREACKNOWLEDGED))
    drv.receive(make_pdu(1, 1, (1, 1, 1), data="m"))
    hb = lambda src, ack, pack: HeartbeatPdu(cid=1, src=src, ack=ack, pack=pack, buf=10**6)
    drv.receive(hb(1, (1, 2, 1), (1, 1, 1)))
    drv.receive(hb(2, (1, 2, 1), (1, 1, 1)))
    # Delivered at pre-ack: one network round earlier than the default.
    assert drv.delivered_payloads == ["m"]


def test_null_pdus_never_delivered(driver):
    from repro.core.pdu import HeartbeatPdu

    null = make_pdu(1, 1, (1, 1, 1), data=None)
    driver.receive(null)
    hb = lambda src, ack, pack: HeartbeatPdu(cid=1, src=src, ack=ack, pack=pack, buf=10**6)
    for pack in ((1, 1, 1), (1, 2, 1)):
        driver.receive(hb(1, (1, 2, 1), pack))
        driver.receive(hb(2, (1, 2, 1), pack))
    assert driver.engine.counters.acknowledged == 1
    assert driver.delivered == []


def test_duplicate_refreshes_buf_advertisement(driver):
    """A retransmitted copy is stamped with the source's freshest BUF at
    resend time; under loss it can be the only advertisement arriving, so
    the duplicate branch must refresh BUF knowledge."""
    driver.receive(make_pdu(1, 1, (1, 1, 1), buf=10))
    assert driver.engine.state.buf[1] == 10
    driver.receive(make_pdu(1, 1, (1, 1, 1), buf=300))  # duplicate, fresh BUF
    assert driver.engine.counters.duplicates == 1
    assert driver.engine.state.buf[1] == 300


def test_duplicate_merges_al_row(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.receive(make_pdu(1, 1, (1, 2, 3)))  # duplicate with newer ACK
    assert driver.engine.counters.duplicates == 1
    assert driver.engine.state.al[1] == [1, 2, 3]


def test_duplicate_ack_vector_triggers_failure_condition_2(driver):
    """§4.3 applies failure condition (2) to *every* received PDU: a
    duplicate whose ACK vector proves E2 sent PDUs we never saw must still
    raise a RET toward E2 — the branch falls through to the common tail."""
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    assert driver.rets_sent == []
    # Duplicate of (1,1), but its ACK vector says seqs 1..2 from E2 exist.
    driver.receive(make_pdu(1, 1, (1, 1, 3)))
    assert driver.engine.counters.duplicates == 1
    rets = driver.rets_sent
    assert len(rets) == 1
    assert rets[0].lsrc == 2


def test_duplicate_knowledge_can_complete_preack(driver):
    """A duplicate's fresher ACK vector must feed the PACK pipeline: if it
    supplies the last missing acceptance evidence, the pre-ack happens on
    the duplicate, not on some later PDU."""
    driver.receive(make_pdu(1, 1, (1, 1, 1), data="m"))
    driver.receive(make_pdu(2, 1, (1, 2, 1)))   # E2 has accepted (1,1)
    assert len(driver.engine.prl) == 0          # E1's own evidence missing
    # Duplicate of E1's PDU, re-sent after E1 accepted its own (ack[1]=2).
    driver.receive(make_pdu(1, 1, (1, 2, 1)))
    assert driver.engine.counters.duplicates == 1
    assert (1, 1) in [p.pdu_id for p in driver.engine.prl]


def test_own_pdu_echo_treated_as_duplicate(driver):
    driver.submit("mine")
    echo = make_pdu(0, 1, (1, 1, 1))
    driver.receive(echo)
    assert driver.engine.counters.duplicates == 1
    assert driver.engine.state.req[0] == 2  # unchanged by the echo


def test_heard_from_tracks_other_entities(driver):
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    assert driver.engine._heard_from == {1}
    driver.submit("x")  # transmission resets the set
    assert driver.engine._heard_from == set()
