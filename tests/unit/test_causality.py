"""Unit tests for Theorem 4.1, Lemma 4.2 and the CPI operation.

The concrete PDUs come from Table 1 of the paper (see
tests/integration/test_paper_example.py for the full trace); here the fields
are written out literally so each predicate is tested in isolation.
"""

import pytest

from repro.core.causality import (
    ack_vectors_consistent,
    causally_coincident,
    causally_precedes,
    causally_related,
    cpi_insert,
    cpi_position,
    is_causality_preserved,
)
from repro.core.pdu import DataPdu


def pdu(src, seq, ack):
    return DataPdu(cid=1, src=src, seq=seq, ack=tuple(ack), buf=0, data=None)


# Table 1 (0-based sources: paper's E1/E2/E3 are 0/1/2).
A = pdu(0, 1, (1, 1, 1))
B = pdu(2, 1, (2, 1, 1))
C = pdu(0, 2, (2, 1, 1))
D = pdu(1, 1, (3, 1, 2))
E = pdu(0, 3, (3, 2, 2))
F = pdu(0, 4, (4, 2, 2))
G = pdu(1, 2, (4, 2, 2))
H = pdu(2, 2, (5, 3, 2))


class TestTheorem41:
    def test_same_source_ordering(self):
        # Theorem 4.1 (1): same source, seq order.
        assert causally_precedes(A, C)
        assert causally_precedes(C, E)
        assert not causally_precedes(C, A)
        assert not causally_precedes(A, A)

    def test_cross_source_precedence(self):
        # Theorem 4.1 (2): p.seq < q.ack[p.src].
        assert causally_precedes(A, B)      # 1 < b.ack[0]=2
        assert causally_precedes(C, D)      # 2 < d.ack[0]=3
        assert causally_precedes(B, D)      # 1 < d.ack[2]=2
        assert causally_precedes(D, E)      # 1 < e.ack[1]=2

    def test_coincident_pair_from_paper(self):
        # Example 4.1: b ~ c.
        assert causally_coincident(B, C)
        assert not causally_precedes(B, C)
        assert not causally_precedes(C, B)

    def test_transitive_chain(self):
        # a < b < d < e: each hop certified by the ACK fields.
        assert causally_precedes(A, D)
        assert causally_precedes(A, E)

    def test_causally_related(self):
        assert causally_related(A, C)   # precedes
        assert causally_related(B, C)   # coincident
        assert causally_related(C, B)


class TestLemma42:
    def test_consistent_pairs(self):
        assert ack_vectors_consistent(A, C)   # same source
        assert ack_vectors_consistent(C, D)   # cross source
        assert ack_vectors_consistent(D, E)

    def test_inconsistency_signals_loss(self):
        # q causally follows p but q's sender regressed on component 2 —
        # the fingerprint of a lost PDU (Fig. 6 discussion).
        p = pdu(0, 1, (1, 1, 3))
        q = pdu(1, 1, (2, 1, 1))
        assert causally_precedes(p, q)
        assert not ack_vectors_consistent(p, q)

    def test_requires_precedence(self):
        with pytest.raises(ValueError):
            ack_vectors_consistent(C, B)  # coincident pair


class TestCPI:
    def test_insert_into_empty(self):
        log = []
        assert cpi_insert(log, A) == 0
        assert log == [A]

    def test_append_successor(self):
        log = [A]
        cpi_insert(log, C)
        assert log == [A, C]

    def test_insert_predecessor_before(self):
        log = [C]
        assert cpi_insert(log, A) == 0
        assert log == [A, C]

    def test_coincident_goes_to_tail_region(self):
        # Paper rule (2-3): coincident PDUs append after existing entries
        # they do not precede.
        log = [A, C]
        cpi_insert(log, B)  # B ~ C, A < B
        assert log.index(A) < log.index(B)

    def test_paper_example_insertion_order(self):
        # Example 4.1: insert a, c, e, then d between c and e, then b
        # between c and d -> <a c b d e>.
        log = []
        for p in (A, C, E):
            cpi_insert(log, p)
        assert log == [A, C, E]
        cpi_insert(log, D)
        assert log == [A, C, D, E]
        cpi_insert(log, B)
        assert log == [A, C, B, D, E]

    def test_position_without_mutation(self):
        log = [A, C, E]
        assert cpi_position(log, D) == 2
        assert log == [A, C, E]

    def test_preserves_causality_property(self):
        import itertools
        for order in itertools.permutations([A, B, C, D, E]):
            log = []
            for p in order:
                cpi_insert(log, p)
            assert is_causality_preserved(log), order


class TestIsCausalityPreserved:
    def test_good_log(self):
        assert is_causality_preserved([A, C, B, D, E])

    def test_bad_log(self):
        assert not is_causality_preserved([C, A])

    def test_empty_and_singleton(self):
        assert is_causality_preserved([])
        assert is_causality_preserved([A])

    def test_fig2_receipt_logs(self):
        # Fig. 2: RL_k = <g p q> is causality-preserved; <g q p> is not.
        g = pdu(0, 1, (1, 1, 1))
        p = pdu(0, 2, (2, 1, 1))
        q = pdu(1, 1, (3, 1, 1))  # sent after receiving p
        assert is_causality_preserved([g, p, q])
        assert not is_causality_preserved([g, q, p])


class TestFollowIndex:
    """The seq index behind CausalLog's O(1) append fast path."""

    def test_fold_tracks_knowledge_upper_bound(self):
        from repro.core.causality import fold_follow_index

        high = [0, 0, 0]
        fold_follow_index(high, C)          # src 0, seq 2, ack (2, 1, 1)
        assert high == [2, 1, 1]
        fold_follow_index(high, D)          # src 1, seq 1, ack (3, 1, 2)
        assert high == [3, 1, 2]

    def test_high_proves_append_in_o1(self):
        from repro.core.causality import fold_follow_index

        high = [0, 0, 0]
        log = [A, C]
        for p in log:
            fold_follow_index(high, p)
        # Nothing resident knows of seq 3 from source 0, so E (seq 3) is
        # provably unprecedented by any entry: append without scanning.
        assert high[E.src] <= E.seq
        assert cpi_position(log, E, high=high) == len(log)

    def test_stale_high_is_sound_never_wrong(self):
        from repro.core.causality import fold_follow_index

        high = [0, 0, 0]
        for p in (A, C, D):
            fold_follow_index(high, p)
        log = [D]                           # A and C were popped; index stale
        # The stale bound blocks the fast path for a PDU D knows about ...
        assert high[C.src] > C.seq
        # ... and the scan still finds the correct (causality-safe) slot.
        assert cpi_position(log, C, high=high) == 0
        # A fresher PDU is unaffected: the fast path still fires.
        assert cpi_position(log, F, high=high) == 1
