"""Unit tests for the §2.2 log-property checkers."""

from repro.ordering.properties import (
    causality_violations,
    duplicate_deliveries,
    local_order_violations,
    missing_deliveries,
    total_order_agreement,
)

M = lambda src, seq: (src, seq)


def test_missing_deliveries():
    log = [M(0, 1), M(1, 1)]
    expected = [M(0, 1), M(1, 1), M(2, 1)]
    assert missing_deliveries(log, expected) == [M(2, 1)]
    assert missing_deliveries(expected, expected) == []


def test_duplicate_deliveries():
    assert duplicate_deliveries([M(0, 1), M(0, 1)]) == [M(0, 1)]
    assert duplicate_deliveries([M(0, 1), M(0, 2)]) == []


def test_local_order_violations():
    good = [M(0, 1), M(1, 1), M(0, 2)]
    assert local_order_violations(good) == []
    bad = [M(0, 2), M(0, 1)]
    assert local_order_violations(bad) == [(M(0, 2), M(0, 1))]


def test_local_order_is_per_source():
    # Interleaving across sources is never a FIFO violation.
    assert local_order_violations([M(1, 2), M(0, 1), M(1, 3)]) == []


def test_causality_violations_with_oracle():
    precedes = lambda p, q: p == M(0, 1) and q == M(1, 1)
    assert causality_violations([M(0, 1), M(1, 1)], precedes) == []
    assert causality_violations([M(1, 1), M(0, 1)], precedes) == [(M(1, 1), M(0, 1))]


def test_causality_violations_empty_relation():
    never = lambda p, q: False
    assert causality_violations([M(0, 1), M(1, 1), M(2, 1)], never) == []


def test_total_order_agreement_detects_swap():
    logs = [
        [M(0, 1), M(1, 1)],
        [M(1, 1), M(0, 1)],
    ]
    disagreements = total_order_agreement(logs)
    assert len(disagreements) == 1
    i, j, p, q = disagreements[0]
    assert (i, j) == (0, 1)


def test_total_order_agreement_ignores_uncommon_messages():
    logs = [
        [M(0, 1), M(1, 1)],
        [M(0, 1)],           # never saw (1,1): prefix agreement only
    ]
    assert total_order_agreement(logs) == []


def test_total_order_agreement_identical_logs():
    log = [M(0, 1), M(1, 1), M(0, 2)]
    assert total_order_agreement([log, list(log), list(log)]) == []
