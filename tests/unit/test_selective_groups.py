"""Unit tests for the selective-groups extension (closed-group emulation).

Pins the service contract of
:class:`repro.extensions.selective_groups.SelectiveBroadcastService`:
receiver-side delivery scoping over the single cluster-wide CO order.

Delivery-scoping semantics vs the hierarchy layer (PROTOCOL.md §18)
-------------------------------------------------------------------
The two features scope *different* things and deliberately diverge:

* Selective groups scope **delivery**: every PDU still travels and is
  ordered cluster-wide, and the filtered view keeps the *global*
  ``(src, seq)`` ids — so a member excluded from some of a source's
  multicasts observes per-source seq gaps.  That is the honest signature
  of a filtered view of one total per-source stream.

* Hierarchical sharding scopes **transport**: every entity still
  delivers every message, and ``HierarchicalCluster.delivered()``
  renumbers per-source app seqs densely (1, 2, 3, ...) so ids line up
  with an equivalent flat run.

Composing them (selective delivery over a sharded transport) is future
work; the public SAP refuses a hierarchy-enabled config rather than
silently running engines in hierarchy mode over a flat transport —
also pinned here.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError
from repro.extensions.selective_groups import (
    SelectiveBroadcastService,
    _Envelope,
)


def _payloads(svc, member):
    return svc.delivered_payloads(member)


class TestScoping:
    def test_multicast_reaches_only_destinations(self):
        svc = SelectiveBroadcastService(n=4, seed=3)
        svc.multicast(0, {1, 2}, "two")
        svc.run_until_quiescent()
        assert _payloads(svc, 1) == ["two"]
        assert _payloads(svc, 2) == ["two"]
        assert _payloads(svc, 0) == []
        assert _payloads(svc, 3) == []

    def test_sender_receives_own_message_only_if_addressed(self):
        svc = SelectiveBroadcastService(n=3, seed=5)
        svc.multicast(0, {0, 1}, "self-included")
        svc.multicast(0, {1}, "self-excluded")
        svc.run_until_quiescent()
        assert _payloads(svc, 0) == ["self-included"]
        assert _payloads(svc, 1) == ["self-included", "self-excluded"]

    def test_broadcast_reaches_everyone(self):
        svc = SelectiveBroadcastService(n=4, seed=7)
        svc.broadcast(2, "all")
        svc.run_until_quiescent()
        for member in range(4):
            assert _payloads(svc, member) == ["all"]

    def test_destinations_are_validated(self):
        svc = SelectiveBroadcastService(n=3, seed=1)
        with pytest.raises(ValueError, match="outside cluster"):
            svc.multicast(0, {1, 7}, "bad")
        with pytest.raises(ValueError, match="outside cluster"):
            svc.multicast(0, {-1}, "bad")

    def test_non_members_carry_but_never_deliver(self):
        """The closed-group emulation: the full cluster orders the PDU."""
        svc = SelectiveBroadcastService(n=4, seed=9)
        svc.multicast(0, {3}, "through")
        svc.run_until_quiescent()
        # Underlying service delivered the envelope everywhere...
        for member in range(4):
            raw = svc.service.delivered_payloads(member)
            assert raw == [_Envelope(frozenset({3}), "through")]
        # ...but only the destination sees it at the extension's SAP.
        assert _payloads(svc, 3) == ["through"]
        assert all(_payloads(svc, m) == [] for m in range(3))


class TestCausalOrderAcrossGroups:
    def test_overlapping_groups_never_invert_causality(self):
        """A chain passing through one group stays ordered in another."""
        svc = SelectiveBroadcastService(n=4, seed=13)
        svc.multicast(0, {1, 2}, "cause")
        svc.run_until_quiescent()
        assert _payloads(svc, 2) == ["cause"]
        # Entity 2 reacts to "cause" with a multicast to the other group.
        svc.multicast(2, {1, 3}, "effect")
        svc.run_until_quiescent()
        # The overlap member sees the chain in causal order.
        assert _payloads(svc, 1) == ["cause", "effect"]
        assert _payloads(svc, 3) == ["effect"]

    def test_chain_through_non_member_is_preserved(self):
        """Causality relayed by an entity outside both destination sets."""
        svc = SelectiveBroadcastService(n=4, seed=17)
        svc.multicast(0, {2}, "first")
        svc.run_until_quiescent()
        # Entity 2 (not a destination of what follows) relays causally.
        svc.multicast(2, {3}, "second")
        svc.run_until_quiescent()
        svc.multicast(3, {1}, "third")
        svc.run_until_quiescent()
        assert _payloads(svc, 1) == ["third"]
        assert _payloads(svc, 2) == ["first"]
        assert _payloads(svc, 3) == ["second"]
        # The cluster-wide order carried all three everywhere.
        for member in range(4):
            assert len(svc.service.delivered(member)) == 3


class TestDivergenceFromHierarchyLayer:
    def test_filtered_view_keeps_global_seq_gaps(self):
        """Selective scoping does NOT renumber: gaps mark skipped traffic.

        This is the documented divergence from
        ``HierarchicalCluster.delivered()``, which renumbers densely.
        """
        svc = SelectiveBroadcastService(n=3, seed=21)
        svc.multicast(0, {1}, "a")          # src 0, seq 1
        svc.multicast(0, {2}, "b")          # src 0, seq 2 — skips entity 1
        svc.multicast(0, {1}, "c")          # src 0, seq 3
        svc.run_until_quiescent()
        at_one = [(m.src, m.seq, m.data) for m in svc.delivered(1)]
        assert at_one == [(0, 1, "a"), (0, 3, "c")]
        at_two = [(m.src, m.seq, m.data) for m in svc.delivered(2)]
        assert at_two == [(0, 2, "b")]

    def test_hierarchy_config_is_rejected_not_half_applied(self):
        with pytest.raises(ConfigurationError, match="hierarchical"):
            SelectiveBroadcastService(
                n=8, config=ProtocolConfig(group_size=4), seed=1,
            )
