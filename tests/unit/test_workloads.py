"""Unit tests for workload generators and the scripted-cluster helper."""

import pytest

from repro.core.cluster import build_cluster
from repro.core.pdu import DataPdu
from repro.sim.rng import RngRegistry
from repro.workloads.generators import (
    BurstyWorkload,
    ContinuousWorkload,
    PoissonWorkload,
    RequestReplyWorkload,
)
from repro.workloads.scenarios import ScriptedCluster


class TestContinuousWorkload:
    def test_submission_count(self):
        cluster = build_cluster(3)
        ContinuousWorkload(messages_per_entity=5, interval=1e-4).install(
            cluster, RngRegistry(0),
        )
        cluster.run_until_quiescent(max_time=10.0)
        submits = cluster.trace.count("submit")
        assert submits == 15

    def test_stagger_offsets_senders(self):
        cluster = build_cluster(2)
        ContinuousWorkload(
            messages_per_entity=1, interval=1e-3, stagger=5e-4,
        ).install(cluster, RngRegistry(0))
        cluster.run_until_quiescent(max_time=10.0)
        submits = cluster.trace.select("submit")
        times = sorted(r.time for r in submits)
        assert times[1] - times[0] == pytest.approx(5e-4)


class TestPoissonWorkload:
    def test_rate_roughly_respected(self):
        cluster = build_cluster(2)
        PoissonWorkload(rate_per_entity=2000, duration=0.05).install(
            cluster, RngRegistry(1),
        )
        cluster.run_until_quiescent(max_time=30.0)
        submits = cluster.trace.count("submit")
        # Expectation: 2 entities * 2000/s * 0.05s = 200.
        assert 120 < submits < 300

    def test_deterministic_under_seed(self):
        def count(seed):
            cluster = build_cluster(2)
            PoissonWorkload(rate_per_entity=1000, duration=0.02).install(
                cluster, RngRegistry(seed),
            )
            cluster.run_until_quiescent(max_time=30.0)
            return cluster.trace.count("submit")

        assert count(7) == count(7)


class TestBurstyWorkload:
    def test_expected_messages(self):
        workload = BurstyWorkload(bursts=3, burst_size=4)
        assert workload.expected_messages == 12

    def test_bursts_rotate_senders(self):
        cluster = build_cluster(3)
        BurstyWorkload(bursts=3, burst_size=2).install(cluster, RngRegistry(2))
        cluster.run_until_quiescent(max_time=30.0)
        senders = {r.entity for r in cluster.trace.select("submit")}
        assert senders == {0, 1, 2}


class TestRequestReplyWorkload:
    def test_reply_counts(self):
        cluster = build_cluster(3)
        RequestReplyWorkload(requests=2, max_depth=1).install(
            cluster, RngRegistry(3),
        )
        cluster.run_until_quiescent(max_time=30.0)
        submits = [r for r in cluster.trace.select("submit")]
        # 2 requests + 2 replies each (entities 1 and 2).
        assert len(submits) == 6

    def test_depth_limits_chains(self):
        shallow = build_cluster(3)
        RequestReplyWorkload(requests=1, max_depth=1).install(
            shallow, RngRegistry(4),
        )
        shallow.run_until_quiescent(max_time=30.0)
        deep = build_cluster(3)
        RequestReplyWorkload(requests=1, max_depth=2).install(
            deep, RngRegistry(4),
        )
        deep.run_until_quiescent(max_time=30.0)
        assert deep.trace.count("submit") > shallow.trace.count("submit")

    def test_reply_probability_zero_means_no_replies(self):
        cluster = build_cluster(3)
        RequestReplyWorkload(requests=3, reply_probability=0.0).install(
            cluster, RngRegistry(5),
        )
        cluster.run_until_quiescent(max_time=30.0)
        assert cluster.trace.count("submit") == 3


class TestScriptedCluster:
    def test_submit_returns_the_data_pdu(self):
        cluster = ScriptedCluster(3)
        pdu = cluster.submit(1, "x")
        assert isinstance(pdu, DataPdu)
        assert pdu.src == 1 and pdu.seq == 1

    def test_nothing_moves_until_delivered(self):
        cluster = ScriptedCluster(3)
        pdu = cluster.submit(0, "x")
        assert cluster.engines[1].state.req == [1, 1, 1]
        cluster.deliver(pdu, 1)
        assert cluster.engines[1].state.req == [2, 1, 1]

    def test_deliver_to_all_skips_sender(self):
        cluster = ScriptedCluster(3)
        pdu = cluster.submit(0, "x")
        cluster.deliver_to_all(pdu)
        assert cluster.engines[1].state.req[0] == 2
        assert cluster.engines[2].state.req[0] == 2

    def test_flush_control_reaches_acknowledgment(self):
        cluster = ScriptedCluster(3)
        pdu = cluster.submit(0, "x")
        cluster.deliver_to_all(pdu)
        assert cluster.delivered[1] == []
        cluster.advance(1.0)
        cluster.flush_control(rounds=4)
        assert [m.data for m in cluster.delivered[1]] == ["x"]
        assert [m.data for m in cluster.delivered[0]] == ["x"]

    def test_advance_moves_clock(self):
        cluster = ScriptedCluster(2)
        cluster.advance(0.5)
        cluster.submit(0, "x")
        assert cluster.trace.select("submit")[0].time == 0.5


class TestTotalMessages:
    """Cluster-size-threaded accounting: exact totals where statically known.

    The old ``expected_messages`` property could not see the cluster size,
    so per-entity workloads (Storm, Continuous) reported ``None`` and the
    soak accounting had to approximate.  ``total_messages(n)`` is exact.
    """

    def test_storm_scales_with_cluster_size(self):
        from repro.workloads.adversarial import StormWorkload

        workload = StormWorkload(batch=10)
        assert workload.expected_messages is None  # size-blind: unknowable
        assert workload.total_messages(4) == 40
        assert workload.total_messages(8) == 80

    def test_storm_total_matches_actual_submissions(self):
        from repro.workloads.adversarial import StormWorkload

        workload = StormWorkload(batch=5)
        cluster = build_cluster(3)
        workload.install(cluster, RngRegistry(1))
        cluster.run_until_quiescent(max_time=30.0)
        assert cluster.trace.count("submit") == workload.total_messages(3)

    def test_continuous_total(self):
        workload = ContinuousWorkload(messages_per_entity=7)
        assert workload.total_messages(5) == 35

    def test_hotspot_total(self):
        from repro.workloads.adversarial import HotspotWorkload

        assert HotspotWorkload(hot_messages=10).total_messages(4) == 13

    def test_chain_total_is_size_independent(self):
        from repro.workloads.adversarial import ChainWorkload

        assert ChainWorkload(hops=9).total_messages(4) == 9

    def test_request_reply_exact_only_when_deterministic(self):
        deterministic = RequestReplyWorkload(requests=3, reply_probability=1.0,
                                             max_depth=1)
        assert deterministic.total_messages(4) == 12
        no_replies = RequestReplyWorkload(requests=3, reply_probability=0.0)
        assert no_replies.total_messages(4) == 3
        random_replies = RequestReplyWorkload(requests=3, reply_probability=0.5)
        assert random_replies.total_messages(4) is None

    def test_poisson_is_not_statically_known(self):
        assert PoissonWorkload().total_messages(4) is None
