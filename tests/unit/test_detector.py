"""Unit tests for the phi-accrual failure detector (PROTOCOL.md §17).

Calibration facts the suite pins (cadence 1.0, pristine window, so the
deviation floor ``0.3 * mean`` governs): silence of 2x the mean scores
phi ~= 3.4, 3x ~= 10.9, 3.5x ~= 16.4 — one lost heartbeat (a 2x silence)
sits far below ``phi_suspect=8``, while a genuine crash crosses both
thresholds within a few heartbeat periods.
"""

import math

import pytest

from repro.core.detector import PHI_CAP, PeerState, PhiAccrualDetector


def make_detector(**overrides):
    kwargs = dict(
        phi_suspect=8.0,
        phi_evict=12.0,
        window=8,
        min_samples=4,
        std_floor=0.3,
        sample_clamp=3.0,
        resuspect_cooldown=0.0,
        bootstrap_timeout=0.05,
    )
    kwargs.update(overrides)
    return PhiAccrualDetector(3, 0, **kwargs)


def train(det, j=1, interval=1.0, beats=8, start=0.0):
    """Feed ``beats`` regular heartbeats; return the last arrival time."""
    now = start
    for _ in range(beats):
        now += interval
        det.heard(j, now)
    return now


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    dict(phi_suspect=0.0),
    dict(phi_suspect=9.0, phi_evict=8.0),
    dict(window=1),
    dict(min_samples=1),
    dict(min_samples=9),
])
def test_invalid_parameters_rejected(bad):
    with pytest.raises(ValueError):
        make_detector(**bad)


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------
def test_unprimed_scores_zero():
    det = make_detector()
    det.heard(1, 1.0)
    det.heard(1, 2.0)          # 2 samples < min_samples=4
    assert not det.primed(1)
    assert det.phi(1, 10.0) == 0.0


def test_phi_zero_at_or_below_mean():
    det = make_detector()
    last = train(det)
    assert det.primed(1)
    assert det.phi(1, last + det.mean(1)) == 0.0


def test_phi_monotone_in_silence():
    det = make_detector()
    last = train(det)
    scores = [det.phi(1, last + s) for s in (1.5, 2.0, 2.5, 3.0, 4.0)]
    assert scores == sorted(scores)
    assert scores[0] > 0.0


def test_one_lost_heartbeat_stays_below_suspect():
    """Satellite guarantee: a single Bernoulli-lost heartbeat at steady
    state (observed silence = 2x the mean) never crosses phi_suspect."""
    det = make_detector()
    last = train(det)
    phi = det.phi(1, last + 2.0)
    assert 2.0 < phi < det.phi_suspect
    assert det.poll(1, last + 2.0) is PeerState.HEALTHY


def test_crash_level_silence_crosses_both_thresholds():
    det = make_detector()
    last = train(det)
    assert det.phi(1, last + 3.0) > det.phi_suspect
    assert det.phi(1, last + 3.5) > det.phi_evict


def test_phi_capped_on_extreme_silence():
    det = make_detector()
    last = train(det)
    assert det.phi(1, last + 1000.0) == PHI_CAP


# ----------------------------------------------------------------------
# Sample clamping (heartbeat-loss tolerance for the learned history)
# ----------------------------------------------------------------------
def test_long_gap_sample_clamped():
    det = make_detector()
    last = train(det)
    det.heard(1, last + 10.0)          # one huge gap (e.g. a partition)
    assert det.counters.phi_samples_clamped == 1
    # The window absorbed at most sample_clamp * old mean, not 10.0.
    assert det.mean(1) < 1.5


def test_clamped_history_keeps_next_score_honest():
    det = make_detector()
    last = train(det)
    det.heard(1, last + 10.0)
    # Statistics survived the outlier: a fresh 2x silence still scores
    # below suspicion instead of being judged against a poisoned window.
    assert det.phi(1, last + 10.0 + 2 * det.mean(1)) < det.phi_suspect


def test_clamp_disabled_with_zero():
    det = make_detector(sample_clamp=0.0)
    last = train(det)
    det.heard(1, last + 10.0)
    assert det.counters.phi_samples_clamped == 0
    assert det.mean(1) > 2.0


# ----------------------------------------------------------------------
# Hysteresis state machine
# ----------------------------------------------------------------------
def test_degraded_then_suspected_then_evict_pending():
    det = make_detector()
    last = train(det)
    assert det.poll(1, last + 3.0) is PeerState.DEGRADED
    assert det.counters.phi_degraded == 1
    assert not det.state(1).excludes
    assert det.poll(1, last + 3.05) is PeerState.SUSPECTED
    assert det.counters.phi_suspects == 1
    assert det.state(1).excludes
    assert not det.evict_ready(1)
    assert det.poll(1, last + 3.6) is PeerState.EVICT_PENDING
    assert det.counters.phi_evict_ready == 1
    assert det.state(1).excludes and det.evict_ready(1)


def test_degraded_recedes_without_arrival():
    """A DEGRADED verdict whose phi drops back (the window was fed by a
    parallel arrival path, or the score was borderline) demotes cleanly."""
    det = make_detector()
    last = train(det)
    assert det.poll(1, last + 3.0) is PeerState.DEGRADED
    det.heard(1, last + 3.1)
    assert det.poll(1, last + 3.2) is PeerState.HEALTHY


def test_arrival_revokes_any_suspicion():
    det = make_detector()
    last = train(det)
    det.poll(1, last + 3.0)
    det.poll(1, last + 3.6)
    assert det.state(1) is PeerState.EVICT_PENDING
    det.heard(1, last + 4.0)
    assert det.state(1) is PeerState.HEALTHY
    assert det.last_phi(1) == 0.0


def test_resuspect_cooldown_blocks_then_releases():
    det = make_detector(resuspect_cooldown=10.0)
    last = train(det)
    det.poll(1, last + 3.0)
    det.poll(1, last + 3.05)
    assert det.state(1) is PeerState.SUSPECTED
    det.heard(1, last + 4.0)            # unsuspected at last+4.0
    # Next crossing: DEGRADED is reached but promotion is blocked while
    # inside the cool-down window...
    assert det.poll(1, last + 10.0) is PeerState.DEGRADED
    assert det.poll(1, last + 10.5) is PeerState.DEGRADED
    assert det.counters.phi_cooldown_blocks >= 1
    # ...and released once it expires (by then the silence is deep enough
    # that the same poll promotes straight through to evict-pending).
    assert det.poll(1, last + 14.5).excludes


def test_absolute_floor_guards_poisoned_window():
    """Silence below ``bootstrap_timeout`` never suspects: the phi bound
    only ever widens the fixed bound.  This is what keeps a window full of
    burst-drain samples (a resumed host) from scoring normal cadence as a
    failure."""
    det = make_detector(bootstrap_timeout=0.05)
    last = train(det, interval=0.001, beats=8)   # sub-floor cadence
    assert det.phi(1, last + 0.01) == PHI_CAP    # score says "certain"
    assert det.poll(1, last + 0.01) is PeerState.HEALTHY
    assert det.poll(1, last + 0.06) is PeerState.DEGRADED


# ----------------------------------------------------------------------
# Bootstrap fallback (unprimed peers still judged by the fixed bound)
# ----------------------------------------------------------------------
def test_bootstrap_fallback_suspects_silent_peer():
    det = make_detector(bootstrap_timeout=0.05)
    assert det.poll(1, 0.06) is PeerState.DEGRADED
    assert det.poll(1, 0.07) is PeerState.SUSPECTED
    assert det.counters.phi_fallback_suspects == 1
    assert det.poll(1, 0.11) is PeerState.EVICT_PENDING


def test_bootstrap_fallback_tolerant_below_timeout():
    det = make_detector(bootstrap_timeout=0.05)
    assert det.poll(1, 0.04) is PeerState.HEALTHY


# ----------------------------------------------------------------------
# Churn hooks and observability
# ----------------------------------------------------------------------
def test_forget_resets_peer():
    det = make_detector()
    last = train(det)
    det.poll(1, last + 3.0)
    det.poll(1, last + 3.05)
    det.forget(1, last + 5.0)
    assert det.state(1) is PeerState.HEALTHY
    assert not det.primed(1)
    assert det.phi(1, last + 6.0) == 0.0
    # The fresh incarnation is judged by the bootstrap bound again.
    assert det.poll(1, last + 5.0 + 0.06) is PeerState.DEGRADED


def test_reset_all_rebaselines_every_peer():
    det = make_detector()
    train(det, j=1)
    train(det, j=2)
    det.reset_all(100.0)
    for j in (1, 2):
        assert not det.primed(j)
        assert det.state(j) is PeerState.HEALTHY


def test_max_phi_and_snapshot():
    det = make_detector()
    last = train(det, j=1)
    train(det, j=2, start=last - 8.0)   # j=2 heard at the same times
    det.heard(2, last + 2.0)            # j=2 fresher than j=1
    top = det.max_phi(last + 2.5, [1, 2])
    assert top == pytest.approx(det.phi(1, last + 2.5))
    snap = det.snapshot(last + 2.5)
    assert set(snap) == {1, 2}
    assert snap[1]["state"] == "healthy"
    assert snap[1]["samples"] == 8
    assert snap[1]["silent_for"] == pytest.approx(2.5)
    assert snap[1]["phi"] > snap[2]["phi"]


def test_counters_object_is_shared_in_place():
    class Counters:
        phi_degraded = 0
        phi_suspects = 0
        phi_evict_ready = 0
        phi_cooldown_blocks = 0
        phi_samples_clamped = 0
        phi_fallback_suspects = 0

    counters = Counters()
    det = make_detector(counters=counters)
    last = train(det)
    det.poll(1, last + 3.0)
    det.poll(1, last + 3.05)
    assert counters.phi_degraded == 1
    assert counters.phi_suspects == 1


def test_identical_traces_identical_series():
    """Determinism: same arrivals, same poll times -> same phi series and
    the same state transitions (no hidden wall-clock or RNG input)."""
    arrivals = [1.0, 2.0, 2.9, 4.1, 5.0, 6.0]
    polls = [6.5, 7.0, 8.5, 9.0, 9.5]
    runs = []
    for _ in range(2):
        det = make_detector()
        for t in arrivals:
            det.heard(1, t)
        runs.append([(det.poll(1, t), det.last_phi(1)) for t in polls])
    assert runs[0] == runs[1]
