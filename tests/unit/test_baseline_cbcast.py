"""Unit tests for the ISIS CBCAST baseline."""

from repro.baselines.isis_cbcast import CbcastEntity, CbcastMessage
from repro.core.entity import DeliveredMessage


class Driver:
    def __init__(self, index, n):
        self.sent = []
        self.delivered = []
        self.engine = CbcastEntity(index, n)
        self.engine.bind(send=self.sent.append, deliver=self.delivered.append)


def test_submit_stamps_and_self_delivers():
    d = Driver(0, 3)
    d.engine.submit("a")
    assert len(d.sent) == 1
    assert d.sent[0].vt == (1, 0, 0)
    assert [m.data for m in d.delivered] == ["a"]


def test_seq_is_own_vt_component():
    d = Driver(1, 3)
    d.engine.submit("a")
    d.engine.submit("b")
    assert d.sent[1].seq == 2
    assert d.sent[1].pdu_id == (1, 2)


def test_in_order_message_delivered():
    d = Driver(0, 3)
    d.engine.on_pdu(CbcastMessage(1, (0, 1, 0), "x"))
    assert [m.data for m in d.delivered] == ["x"]
    assert d.engine.vc.as_tuple() == (0, 1, 0)


def test_missing_causal_past_delays_delivery():
    d = Driver(0, 3)
    # m2 from E1 presupposes m1 from E2 (vt[2] == 1).
    m2 = CbcastMessage(1, (0, 1, 1), "m2")
    d.engine.on_pdu(m2)
    assert d.delivered == []
    assert d.engine.stalled_messages == 1
    m1 = CbcastMessage(2, (0, 0, 1), "m1")
    d.engine.on_pdu(m1)
    assert [m.data for m in d.delivered] == ["m1", "m2"]
    assert d.engine.quiescent


def test_fifo_gap_delays_delivery():
    d = Driver(0, 2)
    d.engine.on_pdu(CbcastMessage(1, (0, 2), "second"))
    assert d.delivered == []
    d.engine.on_pdu(CbcastMessage(1, (0, 1), "first"))
    assert [m.data for m in d.delivered] == ["first", "second"]


def test_delay_queue_chain_drains():
    d = Driver(0, 2)
    d.engine.on_pdu(CbcastMessage(1, (0, 3), "c"))
    d.engine.on_pdu(CbcastMessage(1, (0, 2), "b"))
    assert d.delivered == []
    d.engine.on_pdu(CbcastMessage(1, (0, 1), "a"))
    assert [m.data for m in d.delivered] == ["a", "b", "c"]


def test_lost_message_stalls_forever():
    """§5: virtual clocks cannot detect loss — the queue just waits."""
    d = Driver(0, 2)
    d.engine.on_pdu(CbcastMessage(1, (0, 2), "after-hole"))
    d.engine.on_tick()   # no recovery machinery exists
    assert d.engine.stalled_messages == 1
    assert not d.engine.quiescent


def test_comparisons_counted():
    d = Driver(0, 4)
    d.engine.on_pdu(CbcastMessage(1, (0, 1, 0, 0), "x"))
    assert d.engine.comparisons >= 4


def test_wire_size_linear_in_n():
    small = CbcastMessage(0, (1, 0), "x", data_size=0)
    large = CbcastMessage(0, (1,) + (0,) * 9, "x", data_size=0)
    assert large.wire_size() - small.wire_size() == 8 * 4


def test_causal_relay_scenario():
    # E0 broadcasts a; E1 sees it and broadcasts b; E2 receives b BEFORE a
    # and must hold it.
    e0, e1, e2 = Driver(0, 3), Driver(1, 3), Driver(2, 3)
    e0.engine.submit("a")
    a = e0.sent[0]
    e1.engine.on_pdu(a)
    e1.engine.submit("b")
    b = e1.sent[0]
    e2.engine.on_pdu(b)
    assert e2.delivered == []          # b waits for a
    e2.engine.on_pdu(a)
    assert [m.data for m in e2.delivered] == ["a", "b"]
