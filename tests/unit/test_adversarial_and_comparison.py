"""Unit tests for adversarial workloads, the comparison harness and the
time-series metrics."""

import pytest

from repro.analysis.causal_graph import causal_graph_stats
from repro.core.cluster import build_cluster
from repro.harness.comparison import compare_protocols
from repro.harness.runner import ExperimentConfig
from repro.metrics.timeseries import (
    delivery_latency_series,
    event_rate_series,
    resident_series,
)
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.workloads.adversarial import ChainWorkload, HotspotWorkload, StormWorkload


class TestChainWorkload:
    def test_builds_a_single_causal_chain(self):
        cluster = build_cluster(3)
        ChainWorkload(hops=6).install(cluster, RngRegistry(0))
        cluster.run_until_quiescent(max_time=30.0)
        verify_run(cluster.trace, 3).assert_ok()
        stats = causal_graph_stats(cluster.trace, 3)
        assert stats.messages == 6
        assert stats.depth == 6          # one unbroken chain
        assert stats.concurrency_ratio == 0.0

    def test_chain_delivery_order_identical_everywhere(self):
        cluster = build_cluster(4)
        ChainWorkload(hops=8).install(cluster, RngRegistry(1))
        cluster.run_until_quiescent(max_time=30.0)
        orders = [
            [m.data for m in cluster.delivered(i)] for i in range(4)
        ]
        # A total chain leaves CO no freedom: all orders must agree.
        assert all(order == orders[0] for order in orders)
        assert orders[0] == [f"token:{k}" for k in range(8)]

    def test_chain_under_loss(self):
        from repro.net.loss import BernoulliLoss

        cluster = build_cluster(
            3, loss=BernoulliLoss(0.1, protect_control=True),
            rngs=RngRegistry(2),
        )
        ChainWorkload(hops=6).install(cluster, RngRegistry(2))
        cluster.run_until_quiescent(max_time=60.0)
        verify_run(cluster.trace, 3).assert_ok()


class TestStormWorkload:
    def test_storm_fully_delivered(self):
        cluster = build_cluster(4)
        StormWorkload(batch=8).install(cluster, RngRegistry(3))
        cluster.run_until_quiescent(max_time=60.0)
        report = verify_run(cluster.trace, 4)
        report.assert_ok()
        assert report.deliveries == [32] * 4

    def test_storm_can_overrun_small_buffers(self):
        from repro.core.cluster import CpuModel

        cluster = build_cluster(
            4, buffer_capacity=8, cpu=CpuModel(base=5e-4, per_entity=0.0),
        )
        StormWorkload(batch=10).install(cluster, RngRegistry(4))
        cluster.run_until_quiescent(max_time=120.0)
        assert sum(h.buffer.stats.overruns for h in cluster.hosts) > 0
        verify_run(cluster.trace, 4).assert_ok()


class TestHotspotWorkload:
    def test_hotspot_delivers_everywhere(self):
        cluster = build_cluster(4)
        HotspotWorkload(hot_messages=15).install(cluster, RngRegistry(5))
        cluster.run_until_quiescent(max_time=60.0)
        report = verify_run(cluster.trace, 4)
        report.assert_ok()
        assert report.deliveries == [18] * 4  # 15 hot + 3 trickle


class TestComparisonHarness:
    @pytest.fixture(scope="class")
    def report(self):
        base = ExperimentConfig(
            workload="request-reply", n=4, messages_per_entity=6,
            loss_rate=0.10, seed=13, max_time=2.0,
        )
        return compare_protocols(base)

    def test_co_wins_the_scoreboard(self, report):
        co = report.by_protocol("co")
        assert co.missing == 0
        assert co.causal_violations == 0
        assert co.completed

    def test_unordered_loses_information(self, report):
        assert report.by_protocol("unordered").missing > 0

    def test_cbcast_stalls(self, report):
        cbcast = report.by_protocol("cbcast")
        assert not cbcast.completed
        assert cbcast.stalled > 0

    def test_render_is_a_table(self, report):
        text = report.render()
        assert "protocol" in text
        assert "co" in text
        assert "cbcast" in text

    def test_unknown_protocol_lookup(self, report):
        with pytest.raises(KeyError):
            report.by_protocol("nope")


class TestTimeseries:
    @pytest.fixture(scope="class")
    def cluster(self):
        cluster = build_cluster(3)
        for k in range(10):
            cluster.sim.schedule_at(k * 1e-3, cluster.submit, k % 3, f"m{k}", 0)
        cluster.run_until_quiescent(max_time=30.0)
        return cluster

    def test_delivery_rate_series_totals(self, cluster):
        series = event_rate_series(cluster.trace, "deliver", bucket=2e-3)
        assert series.total == 30  # 10 messages x 3 entities
        assert series.peak >= 1

    def test_latency_series_positive(self, cluster):
        series = delivery_latency_series(cluster.trace, bucket=2e-3)
        assert any(v > 0 for v in series.values)

    def test_resident_series_pipeline_totals_match(self, cluster):
        series = resident_series(cluster.trace, bucket=2e-3)
        assert series["accept"].total >= series["preack"].total
        assert series["preack"].total == series["ack"].total

    def test_times_align_with_buckets(self, cluster):
        series = event_rate_series(cluster.trace, "deliver", bucket=5e-3)
        times = series.times()
        assert times[0] == 0.0
        assert times[1] - times[0] == pytest.approx(5e-3)

    def test_empty_trace(self):
        series = event_rate_series(TraceLog(), "deliver", bucket=1e-3)
        assert series.values == ()
        assert series.total == 0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            event_rate_series(TraceLog(), "deliver", bucket=0)
