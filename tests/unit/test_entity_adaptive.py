"""Engine-level tests for the adaptive (phi-accrual) detector wiring.

The detector math lives in ``test_detector.py``; these tests pin the
*engine* integration: mode selection, the bootstrap fallback feeding the
ordinary suspicion path, the ``phi_evict`` gate on eviction proposals,
and the churn hooks that re-baseline the windows.
"""

import pytest

from repro.core.config import FailureDetectorMode, ProtocolConfig
from repro.core.detector import PeerState
from repro.core.pdu import HeartbeatPdu
from tests.conftest import EngineDriver, make_pdu

PHI_CFG = ProtocolConfig(
    suspect_timeout=0.05,
    evict_timeout=0.1,
    failure_detector=FailureDetectorMode.PHI,
)


def make_driver(config=PHI_CFG):
    return EngineDriver(0, 3, config)


def hb(src, ack=(1, 1, 1), pack=(1, 1, 1)):
    return HeartbeatPdu(cid=1, src=src, ack=ack, pack=pack, buf=10**6)


def test_fixed_mode_has_no_detector():
    drv = EngineDriver(0, 3, ProtocolConfig(suspect_timeout=0.05))
    assert drv.engine.detector is None


def test_phi_mode_builds_detector():
    drv = make_driver()
    detector = drv.engine.detector
    assert detector is not None
    assert detector.phi_suspect == PHI_CFG.phi_suspect
    assert detector.bootstrap_timeout == PHI_CFG.suspect_timeout
    # The detector mutates the engine's own counters object in place.
    assert detector.counters is drv.engine.counters


def test_bootstrap_fallback_suspects_through_engine():
    """Before any window is primed, silence past ``suspect_timeout`` must
    still suspect — via the detector's fallback, not the fixed scan."""
    drv = make_driver()
    drv.clock = 0.03
    drv.receive(make_pdu(1, 1, (1, 1, 1)))
    drv.clock = 0.06
    drv.tick()                            # warning only (hysteresis)
    assert drv.engine.suspected == set()
    drv.clock = 0.065
    drv.tick()                            # persisted: suspect E2
    assert drv.engine.suspected == {2}
    assert drv.engine.counters.phi_fallback_suspects == 1
    assert drv.trace.count("suspect") == 1


def test_arrivals_feed_detector_and_unsuspect():
    drv = make_driver()
    drv.clock = 0.06
    drv.tick()
    drv.clock = 0.065
    drv.tick()
    assert drv.engine.suspected == {1, 2}
    drv.clock = 0.07
    drv.receive(hb(2))
    assert drv.engine.suspected == {1}
    assert drv.engine.detector.state(2) is PeerState.HEALTHY


def test_adaptive_eviction_reaches_proposal():
    """With the silence deep enough for ``phi_evict`` (fallback: 2x the
    bootstrap bound) and the ripeness clock expired, the coordinator
    proposes — the adaptive path can still evict a genuinely dead peer."""
    drv = make_driver()
    # Keep E1 alive and prime nothing for E2 (it never speaks).
    for k, t in enumerate((0.02, 0.05, 0.08, 0.11, 0.14, 0.17)):
        drv.clock = t
        drv.receive(hb(1))
        drv.tick()
    assert drv.engine.suspected == {2}
    drv.clock = 0.20
    drv.receive(hb(1))
    drv.tick()
    assert drv.engine.detector.evict_ready(2)
    assert drv.engine.counters.view_proposals == 1


def test_phi_evict_gate_blocks_unripe_suspicion(monkeypatch):
    """A time-ripe suspicion whose phi never crossed ``phi_evict`` must
    not turn into a view change — the band between the thresholds absorbs
    gray failures."""
    drv = make_driver()
    for t in (0.02, 0.05, 0.08, 0.11, 0.14, 0.17):
        drv.clock = t
        drv.receive(hb(1))
        drv.tick()
    assert drv.engine.suspected == {2}
    monkeypatch.setattr(drv.engine.detector, "evict_ready", lambda j: False)
    drv.clock = 0.25
    drv.receive(hb(1))
    drv.tick()                            # ripe in time, gated on phi
    assert drv.engine.counters.view_proposals == 0
    monkeypatch.undo()
    drv.tick()
    assert drv.engine.counters.view_proposals == 1


def test_suspect_trace_records_phi_score():
    drv = make_driver()
    drv.clock = 0.06
    drv.tick()
    drv.clock = 0.065
    drv.tick()
    records = [r for r in drv.trace.records if r.category == "suspect"]
    assert records and all("phi" in r.details for r in records)


def test_gauges_expose_detector_state():
    drv = make_driver()
    drv.clock = 0.06
    drv.tick()
    drv.clock = 0.065
    drv.tick()
    gauges = drv.engine.gauges()
    assert gauges["detector_suspected"] == 2
    assert gauges["phi_max_decis"] == 0   # unprimed windows score zero
    fixed = EngineDriver(0, 3, ProtocolConfig(suspect_timeout=0.05))
    assert "detector_suspected" not in fixed.engine.gauges()


def test_strict_paper_mode_rejects_phi():
    with pytest.raises(ValueError):
        ProtocolConfig(
            strict_paper_mode=True,
            suspect_timeout=0.05,
            failure_detector=FailureDetectorMode.PHI,
        )


def test_phi_requires_membership_extension():
    with pytest.raises(ValueError):
        ProtocolConfig(failure_detector=FailureDetectorMode.PHI)
