"""Unit tests for vector clocks."""

import pytest

from repro.ordering.vector_clock import VectorClock


def test_zero():
    vc = VectorClock.zero(3)
    assert vc.as_tuple() == (0, 0, 0)
    assert len(vc) == 3


def test_tick_is_functional():
    a = VectorClock.zero(3)
    b = a.tick(1)
    assert a.as_tuple() == (0, 0, 0)
    assert b.as_tuple() == (0, 1, 0)


def test_merge():
    a = VectorClock((3, 1, 0))
    b = VectorClock((1, 2, 0))
    assert (a | b).as_tuple() == (3, 2, 0)


def test_merge_width_mismatch():
    with pytest.raises(ValueError):
        VectorClock((1,)).merge(VectorClock((1, 2)))


def test_happened_before():
    a = VectorClock((1, 0, 0))
    b = VectorClock((1, 1, 0))
    assert a < b
    assert a <= b
    assert not b < a
    assert not a < a


def test_concurrent():
    a = VectorClock((1, 0, 0))
    b = VectorClock((0, 1, 0))
    assert a.concurrent_with(b)
    assert b.concurrent_with(a)
    assert not a.concurrent_with(a)


def test_partial_order_not_total():
    a = VectorClock((2, 0))
    b = VectorClock((0, 2))
    assert not a < b and not b < a and a != b


def test_equality_and_hash():
    assert VectorClock((1, 2)) == VectorClock((1, 2))
    assert hash(VectorClock((1, 2))) == hash(VectorClock((1, 2)))
    assert VectorClock((1, 2)) != VectorClock((2, 1))


def test_getitem_iter():
    vc = VectorClock((4, 5, 6))
    assert vc[1] == 5
    assert list(vc) == [4, 5, 6]


def test_negative_rejected():
    with pytest.raises(ValueError):
        VectorClock((-1, 0))


def test_causal_history_through_events():
    # p0 sends (m1), p1 receives then sends (m2): VT(m1) < VT(m2).
    c0 = VectorClock.zero(2).tick(0)          # send m1
    m1 = c0
    c1 = VectorClock.zero(2).merge(m1).tick(1)  # receive m1, send m2
    m2 = c1
    assert m1 < m2
