"""Unit tests for failure conditions (1) and (2) and the retransmission
action — the two cases of Figure 6."""

from repro.core.config import ProtocolConfig, RetransmissionScheme
from repro.core.pdu import RetPdu
from tests.conftest import EngineDriver, make_pdu


def test_failure_condition_1_sequence_gap(driver):
    """Fig. 6(a): REQ=4 but p.SEQ=5 arrives -> RET with range [4, 5)."""
    for seq in (1, 2, 3):
        driver.receive(make_pdu(1, seq, (1, seq, 1)))
    assert driver.engine.state.req[1] == 4
    driver.receive(make_pdu(1, 5, (1, 5, 1)))    # seq 4 was lost
    rets = driver.rets_sent
    assert len(rets) == 1
    ret = rets[0]
    assert ret.lsrc == 1
    assert ret.requested_from == 4
    assert ret.requested_upto == 5


def test_failure_condition_2_ack_gap(driver):
    """Fig. 6(b): q from E2 carries q.ACK_1=5 while REQ_1=4 -> RET to E1."""
    for seq in (1, 2, 3):
        driver.receive(make_pdu(1, seq, (1, seq, 1)))
    # E2's PDU proves E2 accepted seq 4 from E1 (index 1 in our 0-based
    # cluster; index 0 is this entity itself).
    driver.receive(make_pdu(2, 1, (1, 5, 1)))
    rets = driver.rets_sent
    assert len(rets) == 1
    assert rets[0].lsrc == 1
    assert rets[0].requested_from == 4
    assert rets[0].requested_upto == 5


def test_out_of_order_pdu_stashed_selective(driver):
    driver.receive(make_pdu(1, 2, (1, 2, 1), data="second"))
    assert driver.engine.counters.stashed == 1
    assert driver.engine.state.req[1] == 1
    # The missing PDU arrives (retransmitted): both accept in order.
    driver.receive(make_pdu(1, 1, (1, 1, 1), data="first"))
    assert driver.engine.state.req[1] == 3
    assert driver.engine.counters.accepted == 2


def test_out_of_order_discarded_go_back_n():
    drv = EngineDriver(0, 3, ProtocolConfig(retransmission=RetransmissionScheme.GO_BACK_N))
    drv.receive(make_pdu(1, 2, (1, 2, 1)))
    assert drv.engine.counters.discarded_out_of_order == 1
    assert drv.engine.counters.stashed == 0
    drv.receive(make_pdu(1, 1, (1, 1, 1)))
    assert drv.engine.state.req[1] == 2  # seq 2 must come again


def test_stash_deduplicates(driver):
    p = make_pdu(1, 3, (1, 3, 1))
    driver.receive(p)
    driver.receive(p)
    assert driver.engine.counters.stashed == 1


def test_no_duplicate_ret_for_same_evidence(driver):
    driver.receive(make_pdu(1, 3, (1, 3, 1)))
    driver.receive(make_pdu(1, 3, (1, 3, 1)))   # same gap again
    assert len(driver.rets_sent) == 1


def test_wider_gap_triggers_new_ret(driver):
    driver.receive(make_pdu(1, 3, (1, 3, 1)))
    driver.receive(make_pdu(1, 5, (1, 5, 1)))
    rets = driver.rets_sent
    assert len(rets) == 2
    assert rets[1].requested_upto == 5


def test_ret_timeout_reissues(driver):
    driver.receive(make_pdu(1, 3, (1, 3, 1)))
    assert len(driver.rets_sent) == 1
    driver.tick(dt=driver.engine.config.ret_timeout + 1e-9)
    assert len(driver.rets_sent) == 2


def test_gap_closes_on_recovery_no_more_rets(driver):
    driver.receive(make_pdu(1, 2, (1, 2, 1)))
    driver.receive(make_pdu(1, 1, (1, 1, 1)))
    driver.tick(dt=1.0)
    assert len(driver.rets_sent) == 1  # only the original


def test_source_answers_ret_with_selective_range(driver):
    for name in "abc":
        driver.submit(name)
    before = len(driver.data_sent)
    ret = RetPdu(cid=1, src=1, lsrc=0, lseq=3, ack=(1, 1, 1), buf=10**6)
    driver.receive(ret)
    resent = driver.data_sent[before:]
    assert [p.seq for p in resent] == [1, 2]   # [ack[0]=1, lseq=3)
    assert driver.engine.counters.retransmissions == 2


def test_source_answers_ret_with_go_back_n_range():
    drv = EngineDriver(0, 3, ProtocolConfig(retransmission=RetransmissionScheme.GO_BACK_N))
    for name in "abcd":
        drv.submit(name)
    before = len(drv.data_sent)
    ret = RetPdu(cid=1, src=1, lsrc=0, lseq=3, ack=(2, 1, 1), buf=10**6)
    drv.receive(ret)
    resent = drv.data_sent[before:]
    # Go-back-n: everything from the first missing PDU, ignoring lseq.
    assert [p.seq for p in resent] == [2, 3, 4]


def test_ret_for_other_source_not_answered(driver):
    driver.submit("a")
    before = len(driver.data_sent)
    ret = RetPdu(cid=1, src=1, lsrc=2, lseq=2, ack=(1, 1, 1), buf=10**6)
    driver.receive(ret)
    assert len(driver.data_sent) == before


def test_ret_suppression_window(driver):
    driver.submit("a")
    ret = RetPdu(cid=1, src=1, lsrc=0, lseq=2, ack=(1, 1, 1), buf=10**6)
    before = len(driver.data_sent)
    driver.receive(ret)
    driver.receive(ret)  # a second receiver asks within the window
    assert len(driver.data_sent) == before + 1
    assert driver.engine.counters.retransmissions_suppressed == 1
    # After the suppression interval a repeat is honoured again.
    driver.tick(dt=driver.engine.config.ret_suppression_interval + 1e-9)
    driver.receive(ret)
    assert len(driver.data_sent) == before + 2


def test_ret_ack_vector_updates_knowledge(driver):
    """RET PDUs carry ACK/BUF and update AL like any PDU (§4.3)."""
    ret = RetPdu(cid=1, src=1, lsrc=2, lseq=2, ack=(1, 4, 1), buf=99)
    driver.receive(ret)
    assert driver.engine.state.al[1] == [1, 4, 1]
    assert driver.engine.state.buf[1] == 99


def test_ret_ack_vector_can_trigger_f2(driver):
    # E1's RET (about E2) reveals that E1 accepted PDUs from E2 we miss.
    ret = RetPdu(cid=1, src=1, lsrc=2, lseq=2, ack=(1, 1, 3), buf=10**6)
    driver.receive(ret)
    rets = driver.rets_sent
    assert len(rets) == 1
    assert rets[0].lsrc == 2
    assert rets[0].requested_upto == 3


def test_heartbeat_reveals_senders_own_data_gap(driver):
    """An unsequenced heartbeat is the only way to learn the *sender* sent
    data we never saw — the F2 carrier-component case."""
    from repro.core.pdu import HeartbeatPdu

    hb = HeartbeatPdu(cid=1, src=1, ack=(1, 3, 1), pack=(1, 1, 1), buf=10**6)
    driver.receive(hb)
    rets = driver.rets_sent
    assert len(rets) == 1
    assert rets[0].lsrc == 1
    assert rets[0].requested_from == 1
    assert rets[0].requested_upto == 3
