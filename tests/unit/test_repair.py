"""The anti-entropy repair layer (docs/PROTOCOL.md §15).

Unit tests for the pure decision logic in :class:`RepairManager`, the
repair knobs' config validation, and the eviction-time gap/stash cleanup
the repair work exposed (a gap opened for a member the view later removes
targets seqs above the flush — nothing can ever close it).
"""

import pytest

from repro.core.cluster import build_cluster
from repro.core.config import ConfigurationError, ProtocolConfig
from repro.core.repair import RepairManager
from repro.core.retransmit import GapTracker
from repro.net.loss import LossModel
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry


def _manager(**overrides):
    defaults = dict(suspect_timeout=0.02, anti_entropy_interval=0.01)
    defaults.update(overrides)
    return RepairManager(owner=0, n=4, config=ProtocolConfig(**defaults))


class TestConfigValidation:
    def test_repair_disabled_by_default(self):
        config = ProtocolConfig()
        assert config.anti_entropy_interval is None
        assert not config.repair_enabled
        assert not RepairManager(0, 4, config).enabled

    def test_repair_enabled_property(self):
        assert ProtocolConfig(anti_entropy_interval=0.5).repair_enabled

    def test_strict_paper_mode_forbids_anti_entropy(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(strict_paper_mode=True, anti_entropy_interval=0.5)

    @pytest.mark.parametrize("field, bad", [
        ("anti_entropy_interval", 0.0),
        ("anti_entropy_interval", -1.0),
        ("pull_max_ranges", 0),
        ("pull_after_retries", 0),
        ("delta_sync_threshold", 0),
        ("delta_sync_max_pdus", 0),
    ])
    def test_bad_repair_knobs_rejected(self, field, bad):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(**{field: bad})


class TestDigestScheduling:
    def test_not_due_before_interval(self):
        repair = _manager()
        assert repair.digest_target(0.0, [1, 2, 3]) is not None
        assert repair.digest_target(0.005, [1, 2, 3]) is None
        assert repair.digest_target(0.011, [1, 2, 3]) is not None

    def test_rotation_covers_every_candidate(self):
        repair = _manager()
        targets = [repair.digest_target(0.02 * k, [3, 1, 2]) for k in range(6)]
        # Deterministic rotation over the *sorted* candidates, twice around.
        assert targets == [1, 2, 3, 1, 2, 3]

    def test_no_candidates_or_disabled_means_no_digest(self):
        assert _manager().digest_target(0.0, []) is None
        off = _manager(anti_entropy_interval=None)
        assert not off.enabled
        assert off.digest_target(0.0, [1, 2]) is None

    def test_rotation_survives_membership_change(self):
        repair = _manager()
        assert repair.digest_target(0.00, [1, 2, 3]) == 1
        # Candidate 2 evicted: the rotation carries on from the last peer
        # digested instead of stalling on a stale index.
        assert repair.digest_target(0.02, [1, 3]) == 3
        assert repair.digest_target(0.04, [1, 3]) == 1

    def test_rotation_cursor_is_stable_across_eviction(self):
        """Regression: the old ``rounds % len(candidates)`` cursor re-mapped
        every position when the candidate set changed mid-cycle, so a peer
        could be starved for many rounds.  The stable per-peer cursor must
        digest every live peer within ``len(candidates)`` intervals of any
        membership change."""
        repair = _manager(anti_entropy_interval=0.01)
        now = 0.0
        # Walk partway through a 5-candidate cycle...
        candidates = [1, 2, 3, 4, 5]
        first = [repair.digest_target(now + 0.02 * k, candidates) for k in range(2)]
        assert first == [1, 2]
        # ...then evict 3 mid-rotation.  Every survivor must be digested
        # within len(survivors) further intervals — no starvation window.
        survivors = [1, 2, 4, 5]
        seen = [
            repair.digest_target(1.0 + 0.02 * k, survivors)
            for k in range(len(survivors))
        ]
        assert sorted(seen) == survivors
        # And the cycle continued from the cursor (last digested: 2).
        assert seen == [4, 5, 1, 2]

    def test_rotation_cursor_is_stable_across_rejoin(self):
        repair = _manager()
        assert [repair.digest_target(0.02 * k, [1, 3]) for k in range(2)] == [1, 3]
        # Member 2 rejoins: the cursor (at 3) wraps and picks 2 up next
        # cycle without skipping anyone.
        grown = [repair.digest_target(1.0 + 0.02 * k, [1, 2, 3]) for k in range(3)]
        assert grown == [1, 2, 3]


class TestRangePlanning:
    def test_plans_only_positive_deficits(self):
        repair = _manager()
        ranges = repair.plan_ranges([1, 5, 2, 9], [1, 7, 2, 4])
        assert ranges == [(1, 5, 7)]  # source 3 is *ahead* locally: no range

    def test_owner_and_skip_excluded(self):
        repair = _manager()
        # Owner (0) behind remote, but pulling our own PDUs is nonsense.
        assert repair.plan_ranges([1, 1, 1, 1], [5, 1, 1, 1]) == []
        assert repair.plan_ranges([1, 1, 1, 1], [1, 9, 1, 1], skip=(1,)) == []

    def test_clamped_to_largest_deficits(self):
        repair = _manager(pull_max_ranges=1)
        ranges = repair.plan_ranges([1, 1, 1, 1], [1, 3, 9, 2])
        assert ranges == [(2, 1, 9)]  # the 8-PDU hole wins over the 2 and 1

    def test_escalation_threshold(self):
        repair = _manager(pull_after_retries=2)
        assert not repair.should_escalate(2)
        assert repair.should_escalate(3)
        off = _manager(anti_entropy_interval=None)
        assert not off.should_escalate(100)


class TestDeltaSync:
    def test_deficit_sums_positive_terms_only(self):
        repair = _manager()
        assert repair.deficit([1, 3, 1, 1], [4, 1, 9, 1]) == 3 + 8
        assert repair.deficit([1, 3, 1, 1], [4, 1, 9, 1], skip=(2,)) == 3

    def test_delta_due_threshold_and_rate_limit(self):
        repair = _manager(delta_sync_threshold=10)
        assert not repair.delta_due(2, 9, now=0.0)
        assert repair.delta_due(2, 10, now=0.0)
        repair.mark_delta(2, now=0.0)
        # Rate limit: one burst per peer per interval; other peers unaffected.
        assert not repair.delta_due(2, 50, now=0.005)
        assert repair.delta_due(3, 50, now=0.005)
        assert repair.delta_due(2, 50, now=0.011)

    def test_delta_due_is_a_pure_check(self):
        """Regression: the old API stamped the rate limit inside the check,
        so an answer that then sent zero PDUs (deficit fully pruned from
        the sending log) silently burned the peer's interval."""
        repair = _manager(delta_sync_threshold=10)
        assert repair.delta_due(2, 50, now=0.0)
        # Engine sent nothing, never marked: immediately due again.
        assert repair.delta_due(2, 50, now=0.001)
        repair.mark_delta(2, now=0.001)
        assert not repair.delta_due(2, 50, now=0.002)

    def test_forget_peer_resets_rate_limit(self):
        """Regression: ``_last_delta_at`` survived eviction, so a rejoined
        incarnation's first (most valuable) delta burst was suppressed by
        its predecessor's timestamp."""
        repair = _manager(delta_sync_threshold=10)
        assert repair.delta_due(2, 50, now=0.0)
        repair.mark_delta(2, now=0.0)
        assert not repair.delta_due(2, 50, now=0.005)
        repair.forget_peer(2)
        assert repair.delta_due(2, 50, now=0.005)
        # Out-of-range peers are ignored, not an error.
        repair.forget_peer(-1)
        repair.forget_peer(99)


class TestGapTrackerDropSource:
    def test_drop_source_forgets_gap(self):
        gaps = GapTracker(4)
        gaps.note(2, 5, now=0.0)
        assert gaps.open_gaps == 1
        assert gaps.drop_source(2)
        assert gaps.open_gaps == 0
        assert not gaps.drop_source(2)
        assert gaps.due(10.0, 0.01) == []


class TestEvictionGapCleanup:
    """Regression: a gap (and stash) for an evicted member above the flush
    could never close — its RET timer fired against the dead peer forever
    and the stale stash blocked quiescence."""

    class _DropSeqTwoForever(LossModel):
        """Every copy (original *and* retransmission) of the victim's seq 2
        is lost, so nobody ever holds it and the gap is unserviceable."""

        def __init__(self, victim):
            self.victim = victim

        def should_drop(self, src, dst, pdu, rng):
            return src == self.victim and getattr(pdu, "seq", None) == 2

    def _run(self, seed=3):
        # The victim's seq 2 never reaches anyone; seq 3 arrives and is
        # stashed with an F1 gap.  RETs for seq 2 are answered but the
        # answers drop too, then the victim crashes: only the eviction
        # flush (= 2) can retire the gap and the stashed seq 3.
        config = ProtocolConfig(suspect_timeout=0.02, evict_timeout=0.05)
        victim, n = 3, 4
        cluster = build_cluster(n, config=config,
                                loss=self._DropSeqTwoForever(victim),
                                rngs=RngRegistry(seed))
        cluster.submit(victim, "first")
        cluster.run_until_quiescent(max_time=10.0)
        cluster.submit(victim, "lost")     # seq 2: dropped everywhere
        cluster.submit(victim, "stashed")  # seq 3: stashed behind the hole
        cluster.run_for(0.01)
        cluster.crash(victim)
        return cluster, victim, n

    def test_gap_and_stash_dropped_at_install(self):
        cluster, victim, n = self._run()
        survivors = [i for i in range(n) if i != victim]
        # Survivors saw evidence of the hole before the crash.
        assert any(
            cluster.hosts[i].engine.gaps.get(victim) is not None
            for i in survivors
        )
        cluster.run_until_quiescent(max_time=30.0)
        for i in survivors:
            engine = cluster.hosts[i].engine
            assert engine.view == 1, "eviction never installed"
            assert engine.gaps.open_gaps == 0
            assert all(not s for s in engine._stash)
            assert engine.quiescent
        assert cluster.trace.count("stash-drop") > 0
        verify_run(cluster.trace, n, expect_all_delivered=False).assert_ok()

    def test_survivors_progress_after_cleanup(self):
        cluster, victim, n = self._run(seed=11)
        survivors = [i for i in range(n) if i != victim]
        cluster.run_until_quiescent(max_time=30.0)
        for k, payload in enumerate(["after-0", "after-1"]):
            cluster.submit(survivors[k], payload)
        cluster.run_until_quiescent(max_time=30.0)
        for i in survivors:
            delivered = [m.data for m in cluster.delivered(i)]
            assert "after-0" in delivered and "after-1" in delivered
            # The unserviceable tail stays undelivered — consistently.
            assert "lost" not in delivered and "stashed" not in delivered
