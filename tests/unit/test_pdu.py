"""Unit tests for the PDU formats of Figures 4 and 5."""

import pytest

from repro.core.pdu import DataPdu, HeartbeatPdu, RetPdu


def make_data(**kw):
    defaults = dict(cid=1, src=0, seq=1, ack=(1, 1, 1), buf=100, data="x", data_size=3)
    defaults.update(kw)
    return DataPdu(**defaults)


class TestDataPdu:
    def test_pdu_id(self):
        assert make_data(src=2, seq=7).pdu_id == (2, 7)

    def test_null_pdu(self):
        assert make_data(data=None, data_size=0).is_null
        assert not make_data().is_null

    def test_is_not_control(self):
        assert make_data().is_control is False

    def test_wire_size_scales_with_cluster_size(self):
        small = make_data(ack=(1, 1), data_size=0)
        large = make_data(ack=(1,) * 10, data_size=0)
        assert large.wire_size() - small.wire_size() == 8 * 4

    def test_wire_size_includes_payload(self):
        assert make_data(data_size=100).wire_size() == make_data(data_size=0).wire_size() + 100

    def test_seq_must_start_at_one(self):
        with pytest.raises(ValueError):
            make_data(seq=0)

    def test_ack_entries_start_at_one(self):
        with pytest.raises(ValueError):
            make_data(ack=(1, 0, 1))

    def test_negative_src_rejected(self):
        with pytest.raises(ValueError):
            make_data(src=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_data().seq = 5

    def test_str_mentions_fields(self):
        text = str(make_data(src=1, seq=3))
        assert "E1" in text and "3" in text


class TestRetPdu:
    def make(self, **kw):
        defaults = dict(cid=1, src=2, lsrc=0, lseq=5, ack=(3, 1, 1), buf=10)
        defaults.update(kw)
        return RetPdu(**defaults)

    def test_requested_range(self):
        ret = self.make()
        assert ret.requested_from == 3
        assert ret.requested_upto == 5

    def test_is_control(self):
        assert self.make().is_control is True

    def test_wire_size(self):
        assert self.make().wire_size() == (5 + 3) * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(lsrc=-1)
        with pytest.raises(ValueError):
            self.make(lseq=0)

    def test_str(self):
        assert "RET" in str(self.make())


class TestHeartbeatPdu:
    def make(self, **kw):
        defaults = dict(cid=1, src=0, ack=(2, 2, 2), pack=(1, 1, 1), buf=50)
        defaults.update(kw)
        return HeartbeatPdu(**defaults)

    def test_is_control(self):
        assert self.make().is_control is True

    def test_probe_defaults_false(self):
        assert self.make().probe is False
        assert self.make(probe=True).probe is True

    def test_vector_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self.make(pack=(1, 1))

    def test_wire_size_carries_two_vectors(self):
        # 4 fixed fields (CID, SRC, BUF, VIEW) + ack and pack vectors.
        assert self.make().wire_size() == (4 + 6) * 4

    def test_str(self):
        assert "HB" in str(self.make())
