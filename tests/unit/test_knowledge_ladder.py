"""Unit tests for the epistemic receipt-ladder analysis."""

import pytest

from repro.analysis.knowledge import LEVELS, ladder_spans, receipt_ladder
from repro.core.cluster import build_cluster
from repro.metrics.collector import collect_lifecycles, latency_samples
from repro.metrics.stats import summarize


@pytest.fixture(scope="module")
def cluster():
    c = build_cluster(3)
    for k in range(4):
        c.submit(k % 3, f"m{k}")
    c.run_until_quiescent(max_time=20.0)
    return c


class TestReceiptLadder:
    def test_every_entity_climbs_all_levels(self, cluster):
        ladder = receipt_ladder(cluster.trace, src=0, seq=1)
        assert ladder.complete(3)
        for entity in range(3):
            times = ladder.times[entity]
            assert set(times) >= set(LEVELS[:-1])  # null PDUs never deliver

    def test_levels_are_ordered_in_time(self, cluster):
        ladder = receipt_ladder(cluster.trace, src=0, seq=1)
        for entity, times in ladder.times.items():
            present = [times[lvl] for lvl in LEVELS if lvl in times]
            assert present == sorted(present)

    def test_level_at_threshold_times(self, cluster):
        ladder = receipt_ladder(cluster.trace, src=0, seq=1)
        accept_time = ladder.times[1]["accepted"]
        assert ladder.level_at(1, accept_time - 1e-9) is None
        assert ladder.level_at(1, accept_time) == "accepted"
        end = max(ladder.times[1].values())
        assert ladder.level_at(1, end) in ("acknowledged", "delivered")

    def test_latency_between_levels(self, cluster):
        ladder = receipt_ladder(cluster.trace, src=0, seq=1)
        span = ladder.latency(2, "accepted", "acknowledged")
        assert span is not None and span > 0
        assert ladder.latency(2, "accepted", "accepted") == 0.0

    def test_latency_missing_level_is_none(self, cluster):
        ladder = receipt_ladder(cluster.trace, src=0, seq=999)
        assert ladder.latency(0, "accepted", "acknowledged") is None

    def test_render_table(self, cluster):
        text = receipt_ladder(cluster.trace, src=0, seq=1).render(3)
        assert "receipt ladder" in text
        assert "E2" in text


class TestLadderSpans:
    def test_spans_positive(self, cluster):
        spans = ladder_spans(cluster.trace, 3)
        assert spans["accept_to_preack"]
        assert spans["preack_to_ack"]
        assert all(v >= 0 for vs in spans.values() for v in vs)

    def test_agrees_with_metrics_collector(self, cluster):
        """Two independent reconstructions of the same spans must agree."""
        spans = ladder_spans(cluster.trace, 3)
        lifecycles = collect_lifecycles(cluster.trace)
        collector_preack = sorted(
            s.value for s in latency_samples(lifecycles, "preack")
        )
        assert sorted(spans["accept_to_preack"]) == pytest.approx(collector_preack)
        collector_ack_total = summarize(
            [s.value for s in latency_samples(lifecycles, "ack")]
        )
        ladder_total = summarize([
            a + b for a, b in zip(
                sorted(spans["accept_to_preack"]),
                sorted(spans["preack_to_ack"]),
            )
        ])
        # Same number of observations either way.
        assert collector_ack_total.count == len(spans["preack_to_ack"])
