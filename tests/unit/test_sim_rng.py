"""Unit tests for the named random-stream registry."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream_values():
    a = RngRegistry(seed=42).stream("loss")
    b = RngRegistry(seed=42).stream("loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("loss")
    b = RngRegistry(seed=2).stream("loss")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_names_are_independent():
    rngs = RngRegistry(seed=7)
    loss = rngs.stream("loss")
    jitter = rngs.stream("jitter")
    # Drawing from one stream must not perturb the other.
    baseline = RngRegistry(seed=7).stream("jitter")
    loss.random()
    loss.random()
    assert jitter.random() == baseline.random()


def test_stream_is_cached():
    rngs = RngRegistry(seed=0)
    assert rngs.stream("x") is rngs.stream("x")


def test_derive_seed_is_stable():
    assert RngRegistry(seed=5).derive_seed("a") == RngRegistry(seed=5).derive_seed("a")
    assert RngRegistry(seed=5).derive_seed("a") != RngRegistry(seed=5).derive_seed("b")


def test_fork_is_independent_of_parent():
    parent = RngRegistry(seed=3)
    child = parent.fork("entity-0")
    assert child.stream("w").random() != parent.stream("w").random()


def test_fork_is_deterministic():
    a = RngRegistry(seed=3).fork("entity-1").stream("w").random()
    b = RngRegistry(seed=3).fork("entity-1").stream("w").random()
    assert a == b
