"""Unit tests for protocol configuration."""

import pytest

from repro.core.config import (
    ConfirmationMode,
    DeliveryLevel,
    ProtocolConfig,
    RetransmissionScheme,
)
from repro.core.errors import ConfigurationError


def test_defaults_are_valid_and_not_strict():
    config = ProtocolConfig()
    assert config.window == 8
    assert config.retransmission is RetransmissionScheme.SELECTIVE
    assert config.confirmation is ConfirmationMode.DEFERRED
    assert config.delivery_level is DeliveryLevel.ACKNOWLEDGED
    assert not config.strict_paper_mode


def test_paper_faithful_requires_strict_and_defaults():
    assert not ProtocolConfig().paper_faithful
    assert ProtocolConfig(strict_paper_mode=True).paper_faithful
    assert not ProtocolConfig(
        strict_paper_mode=True,
        retransmission=RetransmissionScheme.GO_BACK_N,
    ).paper_faithful


def test_with_returns_modified_copy():
    base = ProtocolConfig()
    changed = base.with_(window=16)
    assert changed.window == 16
    assert base.window == 8
    assert changed is not base


def test_window_validation():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(window=0)


def test_units_validation():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(units_per_pdu=0)


def test_negative_times_rejected():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(deferred_interval=-1.0)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(ret_timeout=-0.1)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(tick_interval=-0.1)


def test_frozen():
    with pytest.raises(Exception):
        ProtocolConfig().window = 3
