"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_zero_delay_event_runs_after_current_instant_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: (order.append("first"), sim.schedule(0.0, order.append, "nested")))
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.pending


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    end = sim.run(until=2.0)
    assert fired == ["a"]
    assert end == 2.0
    assert sim.now == 2.0


def test_run_until_includes_events_exactly_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "boundary")
    sim.run(until=2.0)
    assert fired == ["boundary"]


def test_resume_after_until_runs_remaining_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    sim.run()
    assert fired == ["a", "b"]


def test_run_empty_with_until_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.1, reschedule)

    sim.schedule(0.1, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=50)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(k):
        fired.append(k)
        if k < 3:
            sim.schedule(1.0, chain, k + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1
