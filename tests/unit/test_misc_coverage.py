"""Coverage for the remaining small surfaces: SimProcess, engine misc,
trace categories, and the public package exports."""

import pytest

from repro.core.entity import COEntity
from repro.core.errors import ProtocolError
from repro.sim.kernel import Simulator
from repro.sim.process import SimProcess
from repro.sim.trace import CATEGORIES, TraceLog
from tests.conftest import EngineDriver, make_pdu


class TestSimProcess:
    def test_clock_and_schedule(self):
        sim = Simulator()
        trace = TraceLog()
        process = SimProcess(sim, trace, index=3)
        fired = []
        process.schedule(1.0, fired.append, "x")
        assert process.now == 0.0
        sim.run()
        assert fired == ["x"]
        assert process.now == 1.0

    def test_record_stamps_index(self):
        sim = Simulator()
        trace = TraceLog()
        process = SimProcess(sim, trace, index=7)
        process.record("accept", src=1)
        assert trace[0].entity == 7
        assert trace[0].category == "accept"


class TestEngineMisc:
    def test_unknown_pdu_type_raises(self, driver):
        with pytest.raises(ProtocolError):
            driver.engine.on_pdu(object())

    def test_invalid_cluster_size(self):
        from repro.core.config import ProtocolConfig

        with pytest.raises(ProtocolError):
            COEntity(0, 0, ProtocolConfig(), clock=lambda: 0.0, trace=TraceLog())

    def test_repr_is_informative(self, driver):
        driver.submit("x")
        text = repr(driver.engine)
        assert "E0" in text and "seq=2" in text

    def test_resident_pdus_counts_all_logs(self, driver):
        driver.submit("a")                      # SL + RRL (self-accepted)
        driver.receive(make_pdu(1, 1, (1, 1, 1)))  # RRL
        driver.receive(make_pdu(2, 2, (1, 1, 1)))  # stash (gap)
        assert driver.engine.resident_pdus >= 3
        assert driver.engine.resident_high_water >= driver.engine.resident_pdus - 1

    def test_quiescent_false_with_open_gap(self, driver):
        driver.receive(make_pdu(1, 3, (1, 3, 1)))
        assert not driver.engine.quiescent

    def test_quiescent_false_with_pending(self):
        from repro.core.config import ProtocolConfig

        drv = EngineDriver(0, 3, ProtocolConfig(window=1))
        drv.submit("a")
        drv.submit("b")          # blocked by window
        assert not drv.engine.quiescent

    def test_counters_snapshot_roundtrip(self, driver):
        driver.submit("a")
        snapshot = driver.engine.counters.snapshot()
        assert snapshot["sent_data"] == 1
        snapshot["sent_data"] = 99
        assert driver.engine.counters.sent_data == 1


class TestTraceVocabulary:
    def test_engine_categories_are_declared(self):
        """Every category the stack emits appears in the documented
        vocabulary, so trace consumers can rely on CATEGORIES."""
        from repro.core.cluster import build_cluster
        from repro.net.loss import BernoulliLoss
        from repro.sim.rng import RngRegistry

        cluster = build_cluster(
            3, loss=BernoulliLoss(0.2, protect_control=True),
            rngs=RngRegistry(3),
        )
        for k in range(8):
            cluster.submit(k % 3, f"m{k}")
        cluster.run_until_quiescent(max_time=30.0)
        emitted = {record.category for record in cluster.trace}
        assert emitted <= set(CATEGORIES)


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.extensions
        import repro.harness
        import repro.metrics
        import repro.net
        import repro.ordering
        import repro.runtime
        import repro.sim
        import repro.workloads

        for module in (
            repro.analysis, repro.baselines, repro.core, repro.extensions,
            repro.harness, repro.metrics, repro.net, repro.ordering,
            repro.runtime, repro.sim, repro.workloads,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__, name,
                )
