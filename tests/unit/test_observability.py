"""Unit tests for the flight-recorder observability layer.

Covers the bounded :class:`FlightRecorder`, JSONL snapshot round trips,
the fixed-bucket :class:`Histogram`, host gauge sampling, the unified
counters schema, and the ``repro inspect`` summary.
"""

import json

from repro.analysis.recording import inspect_path, summarize_recording
from repro.cli import main as cli_main
from repro.core.cluster import build_cluster
from repro.core.config import ProtocolConfig
from repro.net.loss import TargetedLoss
from repro.metrics.collector import (
    collect_lifecycles,
    gauge_histogram,
    latency_histogram,
)
from repro.metrics.reporting import sparkline
from repro.metrics.stats import Histogram
from repro.metrics.timeseries import gauge_entities, gauge_series
from repro.sim.rng import RngRegistry
from repro.sim.trace import FlightRecorder, TraceLog, load_jsonl
from repro.workloads.generators import ContinuousWorkload


def run_small_cluster(trace=None, n=3, messages=4):
    cluster = build_cluster(n, trace=trace, rngs=RngRegistry(7), gauge_every=2)
    ContinuousWorkload(messages_per_entity=messages).install(
        cluster, RngRegistry(7),
    )
    cluster.run_until_quiescent(max_time=60.0)
    return cluster


class TestFlightRecorder:
    def test_ring_keeps_only_the_tail(self):
        recorder = FlightRecorder(capacity=5)
        for k in range(12):
            recorder.record(k * 0.1, "accept", 0, seq=k)
        assert len(recorder) == 5
        assert recorder.recorded_total == 12
        assert recorder.evicted == 7
        assert [rec.get("seq") for rec in recorder] == [7, 8, 9, 10, 11]
        assert recorder[0].get("seq") == 7  # deque __getitem__ still works

    def test_meta_reports_the_bound(self):
        recorder = FlightRecorder(capacity=3)
        recorder.record(0.0, "accept", 0)
        meta = recorder.meta()
        assert meta["kind"] == "flight-recorder"
        assert meta["capacity"] == 3
        assert meta["records"] == 1
        assert meta["evicted"] == 0

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder(capacity=3, enabled=False)
        recorder.record(0.0, "accept", 0)
        assert len(recorder) == 0
        assert recorder.recorded_total == 0

    def test_drop_in_for_tracelog_in_a_cluster_run(self):
        recorder = FlightRecorder(capacity=200)
        cluster = run_small_cluster(trace=recorder)
        assert len(recorder) <= 200
        assert recorder.recorded_total > 200  # the run outgrew the ring
        assert recorder.evicted == recorder.recorded_total - 200
        # Quiescence detection survived the ring (absolute cursor would not).
        assert all(len(cluster.delivered(i)) == 12 for i in range(3))


class TestJsonlRoundTrip:
    def test_dump_and_load_preserve_records(self, tmp_path):
        log = TraceLog()
        log.record(0.1, "accept", 0, src=1, seq=2)
        log.record(0.2, "drop", 1, reason="inbox-overrun")
        path = str(tmp_path / "r.jsonl")
        log.dump_jsonl(path)
        loaded, meta = load_jsonl(path)
        assert meta == {"kind": "trace", "records": 2}
        assert len(loaded) == 2
        assert loaded[0].time == 0.1
        assert loaded[0].category == "accept"
        assert loaded[0].get("src") == 1 and loaded[0].get("seq") == 2
        assert loaded[1].get("reason") == "inbox-overrun"

    def test_sets_become_sorted_lists(self, tmp_path):
        log = TraceLog()
        log.record(0.0, "view-install", 0, members={2, 0, 1})
        path = str(tmp_path / "r.jsonl")
        log.dump_jsonl(path)
        loaded, _ = load_jsonl(path)
        assert loaded[0].get("members") == [0, 1, 2]

    def test_recorder_meta_survives_the_file(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        for k in range(9):
            recorder.record(float(k), "accept", 0, seq=k)
        path = str(tmp_path / "r.jsonl")
        recorder.dump_jsonl(path)
        loaded, meta = load_jsonl(path)
        assert meta["kind"] == "flight-recorder"
        assert meta["evicted"] == 5
        assert len(loaded) == 4
        assert [rec.get("seq") for rec in loaded] == [5, 6, 7, 8]


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram([1.0, 10.0])
        h.add_many([0.5, 0.7, 5.0, 50.0])
        assert h.counts == [2, 1, 1]
        assert h.total == 4
        assert h.minimum == 0.5 and h.maximum == 50.0

    def test_percentile_upper_edge_estimate(self):
        h = Histogram([1.0, 10.0, 100.0])
        h.add_many([0.5] * 50 + [5.0] * 45 + [50.0] * 5)
        assert h.percentile(50) == 1.0
        assert h.percentile(95) == 10.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0

    def test_overflow_percentile_reports_observed_max(self):
        h = Histogram([1.0])
        h.add_many([5.0, 7.0])
        assert h.percentile(99) == 7.0

    def test_empty(self):
        h = Histogram([1.0])
        assert h.percentile(95) == 0.0
        assert h.mean == 0.0
        assert h.summary().count == 0

    def test_merge_requires_same_edges(self):
        a, b = Histogram([1.0, 2.0]), Histogram([1.0, 2.0])
        a.add(0.5)
        b.add(1.5)
        b.add(9.0)
        a.merge(b)
        assert a.total == 3
        assert a.counts == [1, 1, 1]
        assert a.maximum == 9.0
        import pytest
        with pytest.raises(ValueError):
            a.merge(Histogram([1.0, 3.0]))

    def test_dict_round_trip(self):
        h = Histogram.exponential(start=1e-5, factor=2.0, buckets=8)
        h.add_many([1e-5, 3e-4, 1.0])
        again = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
        assert again.edges == h.edges
        assert again.counts == h.counts
        assert again.total == h.total
        assert again.percentile(50) == h.percentile(50)

    def test_summary_bridge(self):
        h = Histogram([1.0, 10.0])
        h.add_many([0.5, 5.0])
        s = h.summary()
        assert s.count == 2
        assert s.mean == 2.75
        assert s.minimum == 0.5 and s.maximum == 5.0


class TestSparkline:
    def test_scales_to_series_max(self):
        line = sparkline([0, 1, 2, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_ascii_ramp(self):
        line = sparkline([0, 7], ascii_only=True)
        assert line == " #"

    def test_degenerate_series(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0, 0]) == "▁▁▁"


class TestGaugesAndCounters:
    def test_hosts_sample_gauges_on_the_tick(self):
        cluster = run_small_cluster()
        gauges = cluster.trace.select(category="gauge")
        assert gauges, "no gauge samples recorded"
        assert gauge_entities(cluster.trace) == [0, 1, 2]
        sample = gauges[0].details
        for key in ("flow_window", "in_flight", "rrl", "prl", "arl",
                    "sending_log", "gap_backlog", "resident",
                    "buf_used", "buf_free"):
            assert key in sample, key

    def test_gauge_series_and_histogram(self):
        cluster = run_small_cluster()
        series = gauge_series(cluster.trace, "buf_free", bucket=1e-3, entity=0)
        assert series.values, "no bucketed gauge samples"
        assert series.peak > 0  # the receive buffer always has headroom here
        h = gauge_histogram(cluster.trace, "rrl")
        assert h.total == len(cluster.trace.select(category="gauge"))

    def test_unified_counters_schema(self):
        cluster = run_small_cluster()
        per_member = cluster.counters()
        assert len(per_member) == 3
        for counters in per_member:
            assert set(counters) == {"engine", "buffer", "transport"}
            assert counters["engine"]["delivered"] == 12
            assert counters["buffer"]["overruns"] == 0
            assert counters["transport"]["pdus_processed"] > 0

    def test_latency_histogram_from_lifecycles(self):
        cluster = run_small_cluster()
        lifecycles = collect_lifecycles(cluster.trace)
        h = latency_histogram(lifecycles, "delivery")
        assert h.total > 0
        assert h.percentile(50) > 0


class TestInspect:
    def _record(self, tmp_path):
        recorder = FlightRecorder(capacity=50_000)
        run_small_cluster(trace=recorder)
        path = str(tmp_path / "run.jsonl")
        recorder.dump_jsonl(path)
        return path

    def test_summary_sections(self, tmp_path):
        path = self._record(tmp_path)
        trace, meta = load_jsonl(path)
        text = summarize_recording(trace, meta)
        assert "phase latencies" in text
        assert "PDU census" in text
        assert "event timelines" in text
        assert "gauges" in text
        assert "submit -> deliver" in text

    def test_inspect_path_and_cli(self, tmp_path, capsys):
        path = self._record(tmp_path)
        assert "flight recording" in inspect_path(path)
        assert cli_main(["inspect", path]) == 0
        out = capsys.readouterr().out
        assert "PDU census" in out
        assert cli_main(["inspect", path, "--bucket", "0.001"]) == 0

    def test_empty_recording_summarizes_without_crashing(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        TraceLog().dump_jsonl(path)
        text = inspect_path(path)
        assert "records: 0" in text

    def test_repair_section_present_when_repair_ran(self, tmp_path):
        recorder = FlightRecorder(capacity=50_000)
        config = ProtocolConfig(
            suspect_timeout=0.05, anti_entropy_interval=0.01,
            delta_sync_threshold=6, pull_after_retries=1,
        )
        cluster = build_cluster(
            4, config=config, trace=recorder,
            loss=TargetedLoss({3}, 0.5), rngs=RngRegistry(5),
        )
        for k in range(4):
            for i in range(4):
                cluster.submit(i, f"m-{i}-{k}")
        cluster.run_until_quiescent(max_time=60.0)
        path = str(tmp_path / "repair.jsonl")
        recorder.dump_jsonl(path)
        trace, meta = load_jsonl(path)
        text = summarize_recording(trace, meta)
        assert "repair activity" in text
        assert "digests sent" in text

    def test_no_repair_section_without_repair(self, tmp_path):
        path = self._record(tmp_path)
        trace, meta = load_jsonl(path)
        assert "repair activity" not in summarize_recording(trace, meta)
