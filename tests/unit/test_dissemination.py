"""Unit tests for the dissemination strategy layer (docs/PROTOCOL.md §16).

These pin the routing arithmetic in isolation: ring successor selection and
termination, gossip peer sampling (determinism, exclusions, fanout), and
the factory's mode dispatch.  End-to-end equivalence lives in
tests/conformance/test_topology_equivalence.py.
"""

import pytest

from repro.core.config import DisseminationMode, ProtocolConfig
from repro.net.dissemination import (
    GossipStrategy,
    RingStrategy,
    make_strategy,
)


def _ring_config():
    return ProtocolConfig(dissemination=DisseminationMode.RING)


def _gossip_config(fanout=2, seed=7):
    return ProtocolConfig(
        dissemination=DisseminationMode.GOSSIP,
        gossip_fanout=fanout,
        gossip_seed=seed,
        anti_entropy_interval=0.05,
    )


class TestFactory:
    def test_flood_yields_no_strategy(self):
        assert make_strategy(ProtocolConfig(), owner=0) is None

    def test_ring_and_gossip_yield_strategies(self):
        assert isinstance(make_strategy(_ring_config(), 0), RingStrategy)
        assert isinstance(make_strategy(_gossip_config(), 0), GossipStrategy)


class TestRing:
    def test_origin_targets_successor_only(self):
        ring = RingStrategy(owner=1, config=_ring_config())
        assert ring.origin_targets([0, 1, 2, 3]) == (2,)
        # Wrap-around: the highest member's successor is the lowest.
        ring = RingStrategy(owner=3, config=_ring_config())
        assert ring.origin_targets([0, 1, 2, 3]) == (0,)

    def test_successor_skips_missing_members(self):
        # Members 2 and 3 absent from the live view: 1's successor is 4.
        ring = RingStrategy(owner=1, config=_ring_config())
        assert ring.origin_targets([0, 1, 4, 5]) == (4,)

    def test_forward_stops_at_origin(self):
        # 3's successor is 0 == origin: the frame has circled.
        ring = RingStrategy(owner=3, config=_ring_config())
        assert ring.forward_targets(origin=0, path=(0, 1, 2, 3),
                                    members=[0, 1, 2, 3]) == ()

    def test_forward_stops_when_successor_already_on_path(self):
        # A shrunken view can point back at a member that already relayed.
        ring = RingStrategy(owner=2, config=_ring_config())
        assert ring.forward_targets(origin=0, path=(0, 3, 2),
                                    members=[0, 2, 3]) == ()

    def test_forward_stops_when_path_spans_view(self):
        ring = RingStrategy(owner=1, config=_ring_config())
        assert ring.forward_targets(origin=0, path=(0, 1),
                                    members=[0, 1, 2, 3]) == (2,)
        # Once the path is as long as the ring, the hop budget is spent —
        # even a stale path with repeats cannot circulate forever.
        assert ring.forward_targets(origin=0, path=(0, 3, 2, 1),
                                    members=[0, 1, 2, 3]) == ()
        assert ring.forward_targets(origin=0, path=(0, 1, 0, 1),
                                    members=[0, 1, 2, 3]) == ()

    def test_singleton_view_sends_nowhere(self):
        ring = RingStrategy(owner=0, config=_ring_config())
        assert ring.origin_targets([0]) == ()

    def test_full_circle_visits_everyone_once(self):
        members = [0, 1, 2, 3, 4]
        strategies = {i: RingStrategy(i, _ring_config()) for i in members}
        path = (2,)
        visited = []
        targets = strategies[2].origin_targets(members)
        while targets:
            (hop,) = targets
            visited.append(hop)
            path = path + (hop,)
            targets = strategies[hop].forward_targets(2, path, members)
        assert visited == [3, 4, 0, 1]


class TestGossip:
    def test_same_seed_same_owner_is_deterministic(self):
        a = GossipStrategy(owner=1, config=_gossip_config(seed=9))
        b = GossipStrategy(owner=1, config=_gossip_config(seed=9))
        members = list(range(8))
        assert [a.origin_targets(members) for _ in range(10)] == \
               [b.origin_targets(members) for _ in range(10)]

    def test_different_owners_draw_different_streams(self):
        members = list(range(16))
        a = GossipStrategy(owner=1, config=_gossip_config(seed=9))
        b = GossipStrategy(owner=2, config=_gossip_config(seed=9))
        draws_a = [a.forward_targets(0, (0, 1), members) for _ in range(6)]
        draws_b = [b.forward_targets(0, (0, 2), members) for _ in range(6)]
        assert draws_a != draws_b

    def test_never_targets_owner_origin_or_path(self):
        members = list(range(6))
        gossip = GossipStrategy(owner=4, config=_gossip_config(fanout=3))
        for _ in range(50):
            targets = gossip.forward_targets(origin=0, path=(0, 2, 4),
                                             members=members)
            assert set(targets).isdisjoint({0, 2, 4})
            assert len(set(targets)) == len(targets)

    def test_fanout_clamped_to_pool(self):
        gossip = GossipStrategy(owner=1, config=_gossip_config(fanout=5))
        targets = gossip.origin_targets([0, 1, 2])
        assert sorted(targets) == [0, 2]

    def test_empty_pool_sends_nowhere(self):
        gossip = GossipStrategy(owner=1, config=_gossip_config())
        assert gossip.forward_targets(origin=0, path=(0, 1),
                                      members=[0, 1]) == ()
