"""Conformance: the adaptive detector changes verdicts, not the protocol.

The same seeded workload runs twice — once with the fixed-timeout scan
and once with the phi-accrual detector at generous thresholds — and in a
fault-free run the outcomes must be **identical**: the detector is a pure
observer (arrivals feed its windows, polls compute scores) and while
nobody is suspected it influences neither a single wire message nor a
single delivery.  Per-entity delivery sequences, final PACK floors and
REQ vectors, and the traffic counters all agree exactly.

This is the conformance that makes adaptive detection a safe default to
offer: switching ``failure_detector`` cannot perturb a healthy cluster.
"""

import pytest

from repro.core.cluster import build_cluster
from repro.core.config import FailureDetectorMode, ProtocolConfig
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry
from repro.workloads.adversarial import ChainWorkload, StormWorkload
from repro.workloads.generators import ContinuousWorkload

SUSPECT = 0.05
EVICT = 0.2


def _config(adaptive):
    if not adaptive:
        return ProtocolConfig(suspect_timeout=SUSPECT, evict_timeout=EVICT)
    return ProtocolConfig(
        suspect_timeout=SUSPECT,
        evict_timeout=EVICT,
        failure_detector=FailureDetectorMode.PHI,
    )


def _run(adaptive, workload, n=4, seed=11):
    cluster = build_cluster(n, config=_config(adaptive), rngs=RngRegistry(seed))
    workload.install(cluster, RngRegistry(seed))
    cluster.run_until_quiescent(max_time=60.0)
    verify_run(cluster.trace, n, expect_all_delivered=True).assert_ok()
    # Fault-free means fault-free observations too: nobody was suspected
    # in either mode, or the equivalence claim would be vacuous.
    for host in cluster.hosts:
        assert host.engine.suspected == set()
        assert host.engine.view == 0
    return cluster


def _delivery_sequences(cluster):
    return [
        [(m.src, m.seq) for m in cluster.delivered(i)]
        for i in range(cluster.n)
    ]


def _final_floors(cluster):
    return [
        (tuple(host.engine._preack_floor), tuple(host.engine.state.req))
        for host in cluster.hosts
    ]


@pytest.mark.parametrize("workload", [
    ChainWorkload(hops=12),
    ContinuousWorkload(messages_per_entity=12, interval=3e-4),
    StormWorkload(batch=8),
], ids=["chain", "continuous", "storm"])
def test_adaptive_mode_is_invisible_fault_free(workload):
    fixed = _run(False, workload)
    adaptive = _run(True, workload)
    assert _delivery_sequences(fixed) == _delivery_sequences(adaptive)
    assert _final_floors(fixed) == _final_floors(adaptive)
    # Not a wire byte of difference: identical traffic both ways.
    assert fixed.network.stats.snapshot() == adaptive.network.stats.snapshot()


def test_detector_genuinely_engaged():
    """The adaptive run really ran the detector (primed windows, polls) —
    the equivalence above is not comparing fixed mode to itself."""
    cluster = _run(True, ContinuousWorkload(messages_per_entity=12, interval=3e-4))
    for host in cluster.hosts:
        detector = host.engine.detector
        assert detector is not None
        peers = [j for j in range(cluster.n) if j != host.engine.index]
        assert all(detector.primed(j) for j in peers)
        assert "phi_max_decis" in host.engine.gauges()


def test_fixed_mode_counters_stay_zero():
    cluster = _run(False, ChainWorkload(hops=12))
    for member in cluster.counters():
        for key, value in member["engine"].items():
            if key.startswith("phi_"):
                assert value == 0
