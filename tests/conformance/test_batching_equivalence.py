"""Conformance: batching changes the wire, not the service.

The same seeded workload runs twice — once with classic one-PDU frames
(``batch_max_pdus=1``) and once with batching (``batch_max_pdus=8``) — and
the *application-visible* outcome must be indistinguishable:

* for workloads whose causal structure forces a total order (a chain, a
  single sender), the per-entity delivery sequences are **identical**;
* for concurrent workloads, where the CO contract deliberately leaves the
  interleaving of concurrent messages free, the delivered *sets*, the
  per-source delivery subsequences, and the final PACK floors and REQ
  vectors agree — everything the service pins down.

This is the equivalence that makes batching a pure transport optimisation:
Theorem 4.1's acceptance/sequencing arithmetic runs PDU-by-PDU on exactly
the same inputs either way.
"""

import pytest

from repro.core.cluster import build_cluster
from repro.core.config import ProtocolConfig
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry
from repro.workloads.adversarial import ChainWorkload, StormWorkload
from repro.workloads.generators import ContinuousWorkload


def _run(batch, workload, n=4, seed=11, loss=None):
    cluster = build_cluster(
        n,
        config=ProtocolConfig(batch_max_pdus=batch),
        rngs=RngRegistry(seed),
        loss=loss,
    )
    workload.install(cluster, RngRegistry(seed))
    cluster.run_until_quiescent(max_time=60.0)
    verify_run(cluster.trace, n, expect_all_delivered=True).assert_ok()
    return cluster


def _delivery_sequences(cluster):
    return [
        [(m.src, m.seq) for m in cluster.delivered(i)]
        for i in range(cluster.n)
    ]


def _per_source(sequence, n):
    split = [[] for _ in range(n)]
    for src, seq in sequence:
        split[src].append(seq)
    return split


def _final_floors(cluster):
    """Per entity: (final PACK floor, final REQ vector)."""
    return [
        (
            tuple(host.engine._preack_floor),
            tuple(host.engine.state.req),
        )
        for host in cluster.hosts
    ]


class TestForcedOrderIdentical:
    """Workloads with a total causal order: sequences must match exactly."""

    def test_chain_identical_sequences(self):
        chain_a = _run(1, ChainWorkload(hops=12))
        chain_b = _run(8, ChainWorkload(hops=12))
        assert _delivery_sequences(chain_a) == _delivery_sequences(chain_b)
        assert _final_floors(chain_a) == _final_floors(chain_b)

    def test_single_sender_identical_sequences(self):
        workload = ContinuousWorkload(messages_per_entity=0)

        def run(batch):
            cluster = build_cluster(
                4, config=ProtocolConfig(batch_max_pdus=batch),
                rngs=RngRegistry(5),
            )
            for k in range(20):
                cluster.submit(0, f"solo-{k}")
            cluster.run_until_quiescent(max_time=60.0)
            verify_run(cluster.trace, 4, expect_all_delivered=True).assert_ok()
            return cluster

        a, b = run(1), run(8)
        assert _delivery_sequences(a) == _delivery_sequences(b)
        assert _final_floors(a) == _final_floors(b)


class TestConcurrentEquivalent:
    """Concurrent workloads: everything the contract pins down agrees."""

    @pytest.mark.parametrize("workload", [
        ContinuousWorkload(messages_per_entity=12, interval=3e-4),
        StormWorkload(batch=8),
    ], ids=["continuous", "storm"])
    def test_sets_subsequences_and_floors_agree(self, workload):
        n = 4
        a = _run(1, workload, n=n)
        b = _run(8, workload, n=n)
        seq_a, seq_b = _delivery_sequences(a), _delivery_sequences(b)
        for i in range(n):
            # Same delivered set at every entity...
            assert set(seq_a[i]) == set(seq_b[i])
            # ...in the same per-source order (local order is pinned)...
            assert _per_source(seq_a[i], n) == _per_source(seq_b[i], n)
        # ...and the protocol state converged to the same knowledge.
        assert _final_floors(a) == _final_floors(b)

    def test_equivalence_survives_loss(self):
        from repro.net.loss import BernoulliLoss

        n = 4
        workload = ContinuousWorkload(messages_per_entity=8, interval=3e-4)
        a = _run(1, workload, n=n, loss=BernoulliLoss(0.1, protect_control=True))
        b = _run(8, workload, n=n, loss=BernoulliLoss(0.1, protect_control=True))
        seq_a, seq_b = _delivery_sequences(a), _delivery_sequences(b)
        for i in range(n):
            assert set(seq_a[i]) == set(seq_b[i])
            assert _per_source(seq_a[i], n) == _per_source(seq_b[i], n)
        assert _final_floors(a) == _final_floors(b)


class TestBatchingEngaged:
    """The batch=8 run genuinely batched (guards against a silent no-op)."""

    def test_frames_carry_multiple_pdus(self):
        cluster = _run(8, StormWorkload(batch=8))
        stats = cluster.network.stats
        assert stats.batch_frames > 0
        assert stats.batched_data_pdus > stats.batch_frames

    def test_unbatched_run_has_no_batch_frames(self):
        cluster = _run(1, StormWorkload(batch=8))
        assert cluster.network.stats.batch_frames == 0
