"""Conformance: sharding changes the transport, not the service.

Two claims from docs/PROTOCOL.md §18 made executable:

* **Degenerate identity** — when the partitioner produces a single group,
  the hierarchical build *is* the flat build: same engines over the same
  network, so the per-entity delivery sequences, the final PACK floors and
  REQ vectors, and the network traffic counters are identical — not merely
  equivalent.  Both degenerate routes are covered: ``group_size == n`` and
  the small-``n`` clamp (``G = min(ceil(n/gs), n//2)``) collapsing to one.

* **Causal extension** — a multi-group run of the same seeded workload
  delivers the same message sets at every entity, preserves every
  per-source subsequence (local order is pinned by the MC contract), and
  keeps causally *forced* chains in chain order at every entity even when
  consecutive hops live in different subgroups — the inter-group barrier
  doing exactly the job the flat ACK matrix does.  The interleaving of
  concurrent messages is deliberately left free, exactly as in the flat
  protocol, so that is all a conformance suite may check.
"""

import pytest

from repro.core.cluster import Cluster, build_cluster
from repro.core.config import ProtocolConfig
from repro.core.groups import HierarchicalCluster, build_hierarchical_cluster
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry
from repro.workloads.generators import ContinuousWorkload


def _delivery_sequences(cluster):
    return [
        [(m.src, m.seq) for m in cluster.delivered(i)]
        for i in range(cluster.n)
    ]


def _per_source(sequence, n):
    split = [[] for _ in range(n)]
    for src, seq in sequence:
        split[src].append(seq)
    return split


def _final_floors(cluster):
    """Per entity: (final PACK floor, final REQ vector)."""
    return [
        (
            tuple(host.engine._preack_floor),
            tuple(host.engine.state.req),
        )
        for host in cluster.hosts
    ]


def _run_flat(n, workload, seed=11):
    cluster = build_cluster(n, config=ProtocolConfig(), rngs=RngRegistry(seed))
    workload.install(cluster, RngRegistry(seed))
    cluster.run_until_quiescent(max_time=60.0)
    verify_run(cluster.trace, n, expect_all_delivered=True).assert_ok()
    return cluster


def _run_hier(n, group_size, workload, seed=11):
    cluster = build_hierarchical_cluster(
        n,
        config=ProtocolConfig(group_size=group_size),
        rngs=RngRegistry(seed),
    )
    workload.install(cluster, RngRegistry(seed))
    cluster.run_until_quiescent(max_time=60.0)
    return cluster


class TestSingleGroupByteIdentity:
    """One group ⇒ the flat protocol, bit for bit."""

    @pytest.mark.parametrize("n,group_size", [(8, 8), (3, 2)],
                             ids=["gs-equals-n", "small-n-clamp"])
    def test_degenerate_build_is_flat(self, n, group_size):
        hier = build_hierarchical_cluster(
            n, config=ProtocolConfig(group_size=group_size),
            rngs=RngRegistry(3),
        )
        assert isinstance(hier, Cluster)
        assert not isinstance(hier, HierarchicalCluster)
        assert hier.roster == tuple(range(n))
        # The engines run with hierarchy disabled — no half-configured mode.
        assert all(not e.config.hierarchy_enabled for e in hier.engines)

    @pytest.mark.parametrize("n,group_size", [(8, 8), (3, 2)],
                             ids=["gs-equals-n", "small-n-clamp"])
    def test_identical_sequences_floors_and_traffic(self, n, group_size):
        workload = ContinuousWorkload(messages_per_entity=10, interval=3e-4)
        flat = _run_flat(n, workload)
        hier = _run_hier(n, group_size, workload)
        verify_run(hier.trace, n, expect_all_delivered=True).assert_ok()
        assert _delivery_sequences(hier) == _delivery_sequences(flat)
        assert _final_floors(hier) == _final_floors(flat)
        assert (hier.network.stats.snapshot()
                == flat.network.stats.snapshot())


def _drive_chain(cluster, hops, chunk=2e-3, max_time=60.0):
    """A causal token chain over the public delivery API.

    ``token:k`` is submitted by entity ``k % n`` only once that entity has
    *delivered* ``token:k-1`` — the same forcing structure as the
    adversarial ChainWorkload, but driven through ``cluster.delivered()``
    so the envelope unwrap of the hierarchical transport is exercised
    rather than bypassed.
    """
    n = cluster.n
    cluster.submit(0, "token:0")
    next_hop = 1
    deadline = cluster.sim.now + max_time
    while next_hop < hops:
        sender = next_hop % n
        seen = {m.data for m in cluster.delivered(sender)}
        if f"token:{next_hop - 1}" in seen:
            cluster.submit(sender, f"token:{next_hop}")
            next_hop += 1
            continue
        if cluster.sim.now >= deadline:
            raise AssertionError(f"chain stalled before hop {next_hop}")
        cluster.run_for(chunk)
    cluster.run_until_quiescent(max_time=max_time)


def _token_order(cluster, i):
    return [m.data for m in cluster.delivered(i)
            if isinstance(m.data, str) and m.data.startswith("token:")]


class TestMultiGroupCausalExtension:
    """Sharded runs extend the flat service: same sets, same pinned orders."""

    N, GROUP_SIZE = 12, 4

    def test_concurrent_workload_sets_and_subsequences_agree(self):
        workload = ContinuousWorkload(messages_per_entity=6, interval=4e-4)
        flat = _run_flat(self.N, workload)
        hier = _run_hier(self.N, self.GROUP_SIZE, workload)
        assert isinstance(hier, HierarchicalCluster)
        seq_f, seq_h = _delivery_sequences(flat), _delivery_sequences(hier)
        for i in range(self.N):
            # Same delivered set at every entity (global message ids)...
            assert set(seq_h[i]) == set(seq_f[i])
            # ...in the same per-source order (local order is pinned).
            assert _per_source(seq_h[i], self.N) == _per_source(seq_f[i], self.N)
        # Per-group engine-level oracles still hold under the wrap.
        for group in hier.groups:
            verify_run(group.trace, group.n, expect_all_delivered=True).assert_ok()

    def test_forced_chain_stays_in_chain_order_across_groups(self):
        hops = 18  # consecutive hops land in different subgroups of 4
        flat = build_cluster(
            self.N, config=ProtocolConfig(), rngs=RngRegistry(17),
        )
        _drive_chain(flat, hops)
        hier = build_hierarchical_cluster(
            self.N, config=ProtocolConfig(group_size=self.GROUP_SIZE),
            rngs=RngRegistry(17),
        )
        _drive_chain(hier, hops)
        want = [f"token:{k}" for k in range(hops)]
        for i in range(self.N):
            assert _token_order(flat, i) == want
            assert _token_order(hier, i) == want

    def test_bridges_genuinely_relay(self):
        """Guard against a silent no-op (everything riding one group)."""
        workload = ContinuousWorkload(messages_per_entity=4, interval=4e-4)
        hier = _run_hier(self.N, self.GROUP_SIZE, workload)
        assert len(hier.groups) == 3
        stats = hier.network_stats()
        assert stats["broadcasts"] > 0
        for bridge in hier.bridges:
            assert bridge.seen[bridge.gid] > 0  # every group exported
        received = sum(
            e.counters.intergroup_received
            for g in hier.groups for e in g.engines
        )
        assert received > 0
