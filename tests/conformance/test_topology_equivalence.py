"""Conformance: dissemination topology changes the route, not the service.

The same seeded workload runs under each dissemination mode — flood (the
paper's all-to-all MC service), ring (pipeline relaying) and gossip
(push-epidemic + anti-entropy completion) — and the *application-visible*
outcome must be indistinguishable:

* for workloads whose causal structure forces a total order (a chain, a
  single sender), the per-entity delivery sequences are **identical**;
* for concurrent workloads, where the CO contract deliberately leaves the
  interleaving of concurrent messages free, the delivered *sets*, the
  per-source delivery subsequences, and the final PACK floors and REQ
  vectors agree — everything the service pins down.

This is the §16 safety claim made executable: a relay wrapper carries the
origin's frame verbatim, so Theorem 4.1's acceptance/sequencing arithmetic
sees exactly the same ACK vectors whichever route a frame took.
"""

import pytest

from repro.core.cluster import build_cluster
from repro.core.config import DisseminationMode, ProtocolConfig
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry
from repro.workloads.adversarial import ChainWorkload, StormWorkload
from repro.workloads.generators import ContinuousWorkload

MODES = [DisseminationMode.FLOOD, DisseminationMode.RING, DisseminationMode.GOSSIP]


def _config(mode):
    # Identical knobs across modes: gossip *requires* the anti-entropy
    # repair tier (its completion path), so every mode gets it — repair
    # that never finds a deficit changes nothing for flood and ring.
    return ProtocolConfig(
        dissemination=mode,
        anti_entropy_interval=0.05,
        gossip_fanout=2,
        gossip_seed=7,
    )


def _run(mode, workload, n=4, seed=11, loss=None, max_time=60.0):
    cluster = build_cluster(
        n, config=_config(mode), rngs=RngRegistry(seed), loss=loss,
    )
    workload.install(cluster, RngRegistry(seed))
    cluster.run_until_quiescent(max_time=max_time)
    verify_run(cluster.trace, n, expect_all_delivered=True).assert_ok()
    return cluster


def _delivery_sequences(cluster):
    return [
        [(m.src, m.seq) for m in cluster.delivered(i)]
        for i in range(cluster.n)
    ]


def _per_source(sequence, n):
    split = [[] for _ in range(n)]
    for src, seq in sequence:
        split[src].append(seq)
    return split


def _final_floors(cluster):
    """Per entity: (final PACK floor, final REQ vector)."""
    return [
        (
            tuple(host.engine._preack_floor),
            tuple(host.engine.state.req),
        )
        for host in cluster.hosts
    ]


class TestForcedOrderIdentical:
    """Workloads with a total causal order: sequences must match exactly."""

    @pytest.mark.parametrize("mode", MODES[1:], ids=["ring", "gossip"])
    def test_chain_identical_sequences(self, mode):
        flood = _run(DisseminationMode.FLOOD, ChainWorkload(hops=12))
        other = _run(mode, ChainWorkload(hops=12))
        assert _delivery_sequences(other) == _delivery_sequences(flood)
        assert _final_floors(other) == _final_floors(flood)

    @pytest.mark.parametrize("mode", MODES[1:], ids=["ring", "gossip"])
    def test_single_sender_identical_sequences(self, mode):
        def run(m):
            cluster = build_cluster(4, config=_config(m), rngs=RngRegistry(5))
            for k in range(20):
                cluster.submit(0, f"solo-{k}")
            cluster.run_until_quiescent(max_time=60.0)
            verify_run(cluster.trace, 4, expect_all_delivered=True).assert_ok()
            return cluster

        flood, other = run(DisseminationMode.FLOOD), run(mode)
        assert _delivery_sequences(other) == _delivery_sequences(flood)
        assert _final_floors(other) == _final_floors(flood)


class TestConcurrentEquivalent:
    """Concurrent workloads: everything the contract pins down agrees."""

    @pytest.mark.parametrize("mode", MODES[1:], ids=["ring", "gossip"])
    @pytest.mark.parametrize("workload", [
        ContinuousWorkload(messages_per_entity=12, interval=3e-4),
        StormWorkload(batch=8),
    ], ids=["continuous", "storm"])
    def test_sets_subsequences_and_floors_agree(self, workload, mode):
        n = 4
        flood = _run(DisseminationMode.FLOOD, workload, n=n)
        other = _run(mode, workload, n=n)
        seq_f, seq_o = _delivery_sequences(flood), _delivery_sequences(other)
        for i in range(n):
            # Same delivered set at every entity...
            assert set(seq_o[i]) == set(seq_f[i])
            # ...in the same per-source order (local order is pinned)...
            assert _per_source(seq_o[i], n) == _per_source(seq_f[i], n)
        # ...and the protocol state converged to the same knowledge.
        assert _final_floors(other) == _final_floors(flood)

    @pytest.mark.parametrize("mode", MODES[1:], ids=["ring", "gossip"])
    def test_equivalence_survives_loss(self, mode):
        from repro.net.loss import BernoulliLoss

        n = 4
        workload = ContinuousWorkload(messages_per_entity=8, interval=3e-4)
        flood = _run(DisseminationMode.FLOOD, workload, n=n,
                     loss=BernoulliLoss(0.1, protect_control=True))
        other = _run(mode, workload, n=n,
                     loss=BernoulliLoss(0.1, protect_control=True))
        seq_f, seq_o = _delivery_sequences(flood), _delivery_sequences(other)
        for i in range(n):
            assert set(seq_o[i]) == set(seq_f[i])
            assert _per_source(seq_o[i], n) == _per_source(seq_f[i], n)
        assert _final_floors(other) == _final_floors(flood)


class TestTopologyEngaged:
    """The relaying runs genuinely relayed (guards against a silent no-op:
    an unbound unicast path makes every mode fall back to flooding)."""

    @pytest.mark.parametrize("mode", MODES[1:], ids=["ring", "gossip"])
    def test_relays_flow(self, mode):
        cluster = _run(mode, ContinuousWorkload(messages_per_entity=6))
        engines = [host.engine for host in cluster.hosts]
        assert sum(e.counters.relays_sent for e in engines) > 0
        assert sum(e.counters.relays_received for e in engines) > 0
        assert cluster.network.stats.unicasts > 0
        if mode is DisseminationMode.RING:
            # A frame stops the moment it has circled: every copy but the
            # last hop's is forwarded, and nothing is forwarded twice.
            assert sum(e.counters.relay_forwards for e in engines) > 0

    def test_flood_run_never_unicasts(self):
        cluster = _run(DisseminationMode.FLOOD,
                       ContinuousWorkload(messages_per_entity=6))
        assert cluster.network.stats.unicasts == 0
        engines = [host.engine for host in cluster.hosts]
        assert sum(e.counters.relays_sent for e in engines) == 0

    def test_gossip_duplicates_are_suppressed(self):
        cluster = _run(DisseminationMode.GOSSIP, StormWorkload(batch=4))
        engines = [host.engine for host in cluster.hosts]
        # With fanout 2 on n=4, concurrent pushes overlap: at least one
        # copy must have arrived stale and died there (infect-and-die).
        assert sum(e.counters.relay_forwards_suppressed for e in engines) > 0
