"""Property-based tests for the delay-matrix constructors.

``Topology.from_graph`` produces *shortest-path* delays, so the matrix it
returns must be a metric: the triangle inequality holds for every triple
and no pair's delay exceeds its direct edge.  ``Topology.random_plane``
draws from a caller-supplied RNG only, so the same seed must reproduce the
same matrix bit for bit (the experiment harness depends on this for
replayable heterogeneous-LAN runs).
"""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.net.topology import Topology

# networkx is an optional extra: from_graph imports it lazily, so these
# properties skip (not fail) on images without it.
nx = pytest.importorskip("networkx")

WEIGHT = st.floats(min_value=1e-6, max_value=1e-2,
                   allow_nan=False, allow_infinity=False)


@st.composite
def connected_graphs(draw):
    """A connected weighted graph on nodes 0..n-1: a random spanning path
    (connectivity by construction) plus random extra edges."""
    n = draw(st.integers(min_value=3, max_value=8))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    order = draw(st.permutations(list(range(n))))
    for a, b in zip(order, order[1:]):
        graph.add_edge(a, b, delay=draw(WEIGHT))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=12,
    ))
    for a, b in extra:
        if a != b:
            graph.add_edge(a, b, delay=draw(WEIGHT))
    return graph


@given(connected_graphs())
def test_from_graph_satisfies_triangle_inequality(graph):
    matrix = Topology.from_graph(graph).as_matrix()
    n = len(matrix)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert matrix[i][k] <= matrix[i][j] + matrix[j][k] + 1e-12, (
                    f"detour through {j} beats the 'shortest' path "
                    f"{i}->{k}: {matrix[i][k]} > "
                    f"{matrix[i][j]} + {matrix[j][k]}"
                )


@given(connected_graphs())
def test_from_graph_never_exceeds_a_direct_edge(graph):
    topology = Topology.from_graph(graph)
    for a, b, data in graph.edges(data=True):
        assert topology.delay(a, b) <= data["delay"] + 1e-12


@given(connected_graphs())
def test_from_graph_matrix_is_a_valid_topology(graph):
    # Symmetric, zero-diagonal, positive off-diagonal — the Topology
    # constructor enforces the first two; pin positivity here.
    topology = Topology.from_graph(graph)
    for i in range(topology.n):
        for j in range(topology.n):
            if i != j:
                assert topology.delay(i, j) > 0.0


@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_plane_is_reproducible_from_seed(n, seed):
    first = Topology.random_plane(n, random.Random(seed))
    second = Topology.random_plane(n, random.Random(seed))
    assert first.as_matrix() == second.as_matrix()
    assert first.max_delay == second.max_delay


@given(st.integers(min_value=2, max_value=12),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_plane_delays_within_geometric_bounds(n, seed):
    scale, min_delay = 1e-3, 1e-5
    topology = Topology.random_plane(
        n, random.Random(seed), scale=scale, min_delay=min_delay,
    )
    diagonal = math.sqrt(2.0) * scale  # unit square, corner to corner
    for i in range(n):
        for j in range(n):
            if i == j:
                assert topology.delay(i, j) == 0.0
            else:
                assert min_delay <= topology.delay(i, j) <= diagonal
