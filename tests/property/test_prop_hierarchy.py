"""Property tests for the hierarchical sharding layer (PROTOCOL.md §18).

Three independent properties:

* **Cross-group causal safety** — for randomized group shapes, submission
  schedules and (optionally) a backbone partition window, no entity ever
  delivers a message before one of its causal predecessors, where the
  happened-before relation is rebuilt *independently* of the engines via
  :mod:`repro.analysis.causal_graph` over an application-level event log
  (delivered-before-submitted edges, a sound subset of the protocol's
  acceptance-based relation).

* **InterGroupPdu codec totality** — every syntactically valid barrier
  frame round-trips bit-exactly, and *every* strict prefix of an encoded
  frame is rejected with :class:`CodecError`, never mis-decoded.

* **View-local state is pure bookkeeping** — a :class:`KnowledgeState`
  constructed over an arbitrary roster behaves identically to the
  identity-roster state under any op sequence; the roster only adds the
  ``row_of``/``global_of`` bijection.  This is the refactor-safety claim
  behind sizing the matrices to the membership view.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.causal_graph import build_causal_graph
from repro.core.codec import CodecError, decode_pdu, encode_pdu
from repro.core.config import ProtocolConfig
from repro.core.groups import (
    GroupPartition,
    HierarchicalCluster,
    build_hierarchical_cluster,
)
from repro.core.pdu import InterGroupPdu
from repro.core.state import KnowledgeState
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

U32 = st.integers(min_value=1, max_value=2 ** 32 - 1)
U32_0 = st.integers(min_value=0, max_value=2 ** 32 - 1)
U16 = st.integers(min_value=0, max_value=2 ** 16 - 1)


# ----------------------------------------------------------------------
# Cross-group causal order under randomized runs
# ----------------------------------------------------------------------
@st.composite
def hierarchy_runs(draw):
    n = draw(st.integers(min_value=6, max_value=10))
    group_size = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    messages = draw(st.integers(min_value=6, max_value=14))
    partition_window = draw(st.one_of(
        st.none(),
        st.tuples(
            st.floats(min_value=0.001, max_value=0.02),
            st.floats(min_value=0.025, max_value=0.06),
        ),
    ))
    return n, group_size, seed, messages, partition_window


@settings(max_examples=10, deadline=None)
@given(hierarchy_runs())
def test_randomized_runs_never_violate_cross_group_causality(params):
    n, group_size, seed, messages, window = params
    schedule_rng = random.Random(seed)
    backbone = GroupPartition()
    cluster = build_hierarchical_cluster(
        n,
        config=ProtocolConfig(group_size=group_size),
        rngs=RngRegistry(seed),
        backbone_loss=backbone,
    )
    assert isinstance(cluster, HierarchicalCluster)
    G = len(cluster.groups)
    if window is not None and G >= 2:
        cut, heal = window
        a, b = schedule_rng.sample(range(G), 2)
        cluster.sim.schedule(cut, lambda: backbone.partition(a, b))
        cluster.sim.schedule(heal, backbone.heal)
    # Random submission schedule; app-level ids are (sender, k-th own
    # submission *in time order* — the id scheme delivered() renumbers to).
    schedule = sorted(
        (schedule_rng.uniform(0.0, 0.05), schedule_rng.randrange(n))
        for _ in range(messages)
    )
    submits = []
    counts = [0] * n
    for at, sender in schedule:
        counts[sender] += 1
        message = (sender, counts[sender])
        submits.append((at, message))
        cluster.sim.schedule_at(
            at, cluster.submit, sender, f"m-{message[0]}-{message[1]}",
        )
    # Step past the whole schedule (and any heal) before asking for
    # quiescence — a sparse schedule has idle gaps wider than the
    # quiescence detector's settle window.
    cluster.run_for(0.07)
    cluster.run_until_quiescent(max_time=60.0)

    everything = {message for _, message in submits}
    sequences = {
        i: [(m.src, m.seq) for m in cluster.delivered(i)] for i in range(n)
    }
    for i in range(n):
        assert set(sequences[i]) == everything, f"entity {i} is missing messages"

    # Rebuild happened-before independently of the engines: a message
    # "accepted" (delivered) at its future sender before the send is a
    # causal predecessor.  Sound subset of acceptance-based causality.
    synth = TraceLog()
    events = []
    for at, (src, seq) in submits:
        events.append((at, 0, "broadcast", src, {"kind": "DataPdu", "seq": seq}))
    for i in range(n):
        for m in cluster.delivered(i):
            events.append(
                (m.delivered_at, 1, "accept", i, {"src": m.src, "seq": m.seq}),
            )
    events.sort(key=lambda e: (e[0], e[1]))
    for at, _, category, entity, fields in events:
        synth.record(at, category, entity, **fields)
    graph = build_causal_graph(synth, n, reduce=True)
    for i in range(n):
        position = {message: k for k, message in enumerate(sequences[i])}
        for p, q in graph.edges:
            assert position[p] < position[q], (
                f"entity {i} delivered {q} before its causal predecessor {p}"
            )

    # And the relay layer itself drained: no inter-group stream has gaps.
    for origin, owner in enumerate(cluster.bridges):
        for bridge in cluster.bridges:
            assert bridge.seen[origin] == owner.seen[origin]
            assert not bridge.pending[origin]


# ----------------------------------------------------------------------
# InterGroupPdu codec round-trip and truncation
# ----------------------------------------------------------------------
@st.composite
def intergroup_pdus(draw):
    if draw(st.booleans()):
        return InterGroupPdu(
            cid=draw(U32_0),
            origin_group=draw(U16),
            sender_group=draw(U16),
            src=0,
            seq=1,
            gseq=draw(U32),
            barrier=(),
            buf=draw(U32_0),
            ack=True,
        )
    barrier = tuple(draw(st.lists(U32_0, min_size=1, max_size=12)))
    payload = draw(st.one_of(st.none(), st.binary(max_size=120)))
    return InterGroupPdu(
        cid=draw(U32_0),
        origin_group=draw(U16),
        sender_group=draw(U16),
        src=draw(U16),
        seq=draw(U32),
        gseq=draw(U32),
        barrier=barrier,
        buf=draw(U32_0),
        data=payload,
        data_size=0 if payload is None else len(payload),
    )


@settings(max_examples=200, deadline=None)
@given(intergroup_pdus())
def test_intergroup_roundtrip(pdu):
    frame = encode_pdu(pdu)
    decoded = decode_pdu(frame)
    assert decoded == pdu
    assert encode_pdu(decoded) == frame


@settings(max_examples=60, deadline=None)
@given(intergroup_pdus(), st.data())
def test_intergroup_truncation_rejected(pdu, data):
    frame = encode_pdu(pdu)
    cut = data.draw(st.integers(min_value=1, max_value=len(frame) - 1))
    try:
        decode_pdu(frame[:cut])
    except CodecError:
        return
    raise AssertionError(f"truncated frame of {cut}/{len(frame)} bytes decoded")


# ----------------------------------------------------------------------
# View-local KnowledgeState: the roster is pure bookkeeping
# ----------------------------------------------------------------------
@st.composite
def roster_op_sequences(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    index = draw(st.integers(min_value=0, max_value=n - 1))
    # An arbitrary injective global roster, e.g. members (17, 3, 42, ...).
    roster = draw(st.permutations(range(50)).map(lambda p: tuple(p[:n])))
    others = [j for j in range(n) if j != index]
    vector = st.lists(
        st.integers(min_value=1, max_value=30), min_size=n, max_size=n,
    )
    observer = st.integers(min_value=0, max_value=n - 1)
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("al"), observer, vector),
            st.tuples(st.just("pal"), observer, vector),
            st.tuples(st.just("buf"), observer,
                      st.integers(min_value=0, max_value=40)),
            st.tuples(st.just("accept"), observer, st.just(None)),
            st.tuples(st.just("excl"), st.sampled_from(others), st.booleans()),
        ),
        min_size=1, max_size=40,
    ))
    return n, index, roster, ops


@settings(max_examples=150, deadline=None)
@given(roster_op_sequences())
def test_roster_state_matches_identity_state(params):
    n, index, roster, ops = params
    local = KnowledgeState(n, index, roster=roster)
    ident = KnowledgeState(n, index)
    for kind, target, arg in ops:
        if kind in ("al", "pal"):
            merge_l = local.merge_al if kind == "al" else local.merge_pal
            merge_i = ident.merge_al if kind == "al" else ident.merge_pal
            out_l, out_i = merge_l(target, arg), merge_i(target, arg)
            assert (out_l.changed, out_l.dirty) == (out_i.changed, out_i.dirty)
        elif kind == "buf":
            local.update_buf(target, arg)
            ident.update_buf(target, arg)
        elif kind == "accept":
            seq = ident.req[target]
            out_l, out_i = local.accept(target, seq), ident.accept(target, seq)
            assert (out_l.changed, out_l.dirty) == (out_i.changed, out_i.dirty)
        else:
            local.set_excluded(target, arg)
            ident.set_excluded(target, arg)
        snap_l, snap_i = local.snapshot(), ident.snapshot()
        assert snap_l.pop("roster") == list(roster)
        assert snap_i.pop("roster") == list(range(n))
        assert snap_l == snap_i
    # The membership map is the advertised bijection.
    for row, member in enumerate(roster):
        assert local.row_of(member) == row
        assert local.global_of(row) == member
