"""Property-based tests for frame batching and ACK coalescing.

Two families:

* codec properties — batch frames round-trip byte-exactly through the wire
  codec, including MTU splits and the empty (pure-confirmation) frame;
* protocol properties — a cluster mixing batched and unbatched senders
  under injected loss and duplication still satisfies the full CO service
  contract as judged by the independent happened-before oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cluster import build_cluster
from repro.core.codec import decode_pdu, encode_pdu, split_batch
from repro.core.config import ProtocolConfig
from repro.core.entity import COEntity
from repro.core.pdu import BatchPdu, DataPdu
from repro.net.loss import BernoulliLoss, DuplicatingChannel
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry

U32 = st.integers(min_value=1, max_value=2 ** 32 - 1)
U32_0 = st.integers(min_value=0, max_value=2 ** 32 - 1)


@st.composite
def batch_pdus(draw, min_inner=0, max_inner=6):
    n = draw(st.integers(min_value=1, max_value=8))
    cid = draw(U32_0)
    src = draw(st.integers(min_value=0, max_value=n - 1))
    count = draw(st.integers(min_value=min_inner, max_value=max_inner))
    start = draw(st.integers(min_value=1, max_value=2 ** 32 - 1001))
    seqs = sorted(draw(st.sets(
        st.integers(min_value=start, max_value=start + 1000),
        min_size=count, max_size=count,
    )))
    inners = tuple(
        DataPdu(
            cid=cid, src=src, seq=seq,
            ack=tuple(draw(st.lists(U32, min_size=n, max_size=n))),
            buf=draw(U32_0),
            data=draw(st.one_of(st.none(), st.binary(max_size=120))),
        )
        for seq in seqs
    )
    return BatchPdu(
        cid=cid, src=src,
        ack=tuple(draw(st.lists(U32, min_size=n, max_size=n))),
        pack=tuple(draw(st.lists(U32_0, min_size=n, max_size=n))),
        buf=draw(U32_0),
        pdus=inners,
    )


# ----------------------------------------------------------------------
# Codec properties
# ----------------------------------------------------------------------
@given(batch_pdus())
def test_batch_roundtrip_byte_exact(pdu):
    frame = encode_pdu(pdu)
    decoded = decode_pdu(frame)
    assert isinstance(decoded, BatchPdu)
    assert decoded.cid == pdu.cid
    assert decoded.src == pdu.src
    assert decoded.ack == pdu.ack
    assert decoded.pack == pdu.pack
    assert decoded.buf == pdu.buf
    assert decoded.seqs == pdu.seqs
    for got, want in zip(decoded.pdus, pdu.pdus):
        assert got.ack == want.ack
        assert got.is_null == want.is_null
    # Byte-exact: re-encoding the decoded frame reproduces the wire image.
    assert encode_pdu(decoded) == frame


@given(st.tuples(U32_0, st.integers(0, 7)))
def test_empty_batch_is_a_control_frame(fields):
    cid, src = fields
    pdu = BatchPdu(cid=cid, src=src, ack=(1,) * 8, pack=(0,) * 8, buf=42)
    assert pdu.is_control and pdu.pdu_count == 0
    decoded = decode_pdu(encode_pdu(pdu))
    assert decoded == pdu
    assert encode_pdu(decoded) == encode_pdu(pdu)


@given(batch_pdus(min_inner=1), st.integers(min_value=1, max_value=400))
def test_split_batch_preserves_content(pdu, mtu):
    chunks = split_batch(pdu, mtu)
    # Every chunk is a well-formed frame repeating the confirmation header.
    recovered = []
    for chunk in chunks:
        assert chunk.cid == pdu.cid and chunk.src == pdu.src
        assert chunk.ack == pdu.ack and chunk.pack == pdu.pack
        assert chunk.buf == pdu.buf
        assert chunk.pdu_count >= 1
        decoded = decode_pdu(encode_pdu(chunk))
        assert encode_pdu(decoded) == encode_pdu(chunk)
        recovered.extend(chunk.seqs)
    # The union of the chunks is exactly the original batch, in order.
    assert tuple(recovered) == pdu.seqs
    # Chunks respect the MTU unless a single inner PDU alone exceeds it.
    for chunk in chunks:
        if chunk.pdu_count > 1:
            assert len(encode_pdu(chunk)) <= mtu


@given(batch_pdus())
def test_split_fits_means_identity(pdu):
    frame = encode_pdu(pdu)
    assert split_batch(pdu, len(frame)) == [pdu]


# ----------------------------------------------------------------------
# Protocol properties
# ----------------------------------------------------------------------
def _mixed_factory(index, n, config, clock, trace, advertised_buf, joining=False):
    """Even entities batch, odd entities send classic one-PDU frames."""
    cfg = config if index % 2 == 0 else config.with_(batch_max_pdus=1)
    return COEntity(index, n, cfg, clock, trace, advertised_buf, joining=joining)


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    n=st.integers(min_value=2, max_value=5),
    batch=st.integers(min_value=2, max_value=6),
    loss_rate=st.sampled_from((0.0, 0.05, 0.15)),
    duplicate=st.booleans(),
    per_entity=st.integers(min_value=1, max_value=8),
)
def test_mixed_batching_preserves_causal_order(
    seed, n, batch, loss_rate, duplicate, per_entity
):
    cluster = build_cluster(
        n,
        config=ProtocolConfig(batch_max_pdus=batch),
        loss=BernoulliLoss(loss_rate, protect_control=True) if loss_rate else None,
        duplication=DuplicatingChannel(rate=0.2, max_extra=1) if duplicate else None,
        rngs=RngRegistry(seed),
        engine_factory=_mixed_factory,
    )
    for k in range(per_entity):
        for i in range(n):
            cluster.submit(i, f"m-{i}-{k}")
    cluster.run_until_quiescent(max_time=60.0)
    verify_run(cluster.trace, n, expect_all_delivered=True).assert_ok()


@settings(deadline=None, max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    batch=st.integers(min_value=2, max_value=8),
)
def test_batching_under_loss_delivers_everything(seed, batch):
    """Losing whole frames (several PDUs at once) still repairs via RET."""
    n = 4
    cluster = build_cluster(
        n,
        config=ProtocolConfig(batch_max_pdus=batch),
        loss=BernoulliLoss(0.2, protect_control=True),
        rngs=RngRegistry(seed),
    )
    for k in range(3 * n):
        cluster.submit(k % n, f"lossy-{k}")
    cluster.run_until_quiescent(max_time=60.0)
    verify_run(cluster.trace, n, expect_all_delivered=True).assert_ok()
    for i in range(n):
        assert len(cluster.delivered(i)) == 3 * n
