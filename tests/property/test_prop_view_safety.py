"""Property-based view-safety tests for the crash-recovery extension.

Hypothesis drives the two knobs a real deployment cannot control — *when*
the crash lands relative to the traffic, and *which* loss pattern the
network deals — and asserts the extension's safety contract regardless:

* every entity that installs view ``v`` installs it with the same member
  set, and the survivors converge to the same final view (view agreement);
* per source, any two live delivery logs are prefixes of one another — a
  view change never opens a delivery gap (prefix consistency);
* the whole history is a function of the seed: replaying the same crash
  timing and loss seed reproduces identical view logs and delivery logs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cluster import build_cluster
from repro.core.config import ProtocolConfig
from repro.harness.nemesis import (
    check_prefix_consistency,
    check_view_agreement,
    per_source_logs,
)
from repro.net.loss import BernoulliLoss
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry

CFG = ProtocolConfig(suspect_timeout=0.02, evict_timeout=0.05)


def run_crash_history(crash_delay, loss_rate, seed, rejoin):
    """One deterministic crash(-and-maybe-rejoin) execution; returns the
    cluster plus its observable history fingerprint."""
    n, victim = 4, 1
    cluster = build_cluster(
        n,
        config=CFG,
        loss=BernoulliLoss(loss_rate, protect_control=True) if loss_rate else None,
        rngs=RngRegistry(seed),
    )
    for k in range(6):
        cluster.submit(k % n, f"pre-{k}")
    cluster.run_for(crash_delay)
    cluster.crash(victim)
    cluster.run_for(0.7)  # suspicion + eviction + install barrier
    survivors = [i for i in range(n) if i != victim]
    for k in range(3):
        cluster.submit(survivors[k % 3], f"post-{k}")
    cluster.run_until_quiescent(max_time=60.0)
    if rejoin:
        cluster.restart(victim)
        cluster.run_until_quiescent(max_time=60.0)
    fingerprint = (
        tuple(tuple(cluster.hosts[i].engine.view_log) for i in range(n)),
        tuple(
            tuple((m.src, m.seq) for m in cluster.delivered(i)) for i in range(n)
        ),
    )
    return cluster, survivors, fingerprint


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    crash_delay=st.sampled_from((0.001, 0.004, 0.01, 0.02)),
    loss_rate=st.sampled_from((0.0, 0.05, 0.10)),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    rejoin=st.booleans(),
)
def test_view_safety_under_random_crash_timing_and_loss(
    crash_delay, loss_rate, seed, rejoin
):
    cluster, survivors, _ = run_crash_history(crash_delay, loss_rate, seed, rejoin)
    n = cluster.n
    verify_run(cluster.trace, n, expect_all_delivered=False).assert_ok()
    live = list(range(n)) if rejoin else survivors
    check_view_agreement(cluster.engines, live)
    check_prefix_consistency(cluster, survivors)
    # The eviction must actually have happened (majority present), and on
    # the rejoin path the victim must be back in a later view.
    assert all(cluster.hosts[i].engine.view >= 1 for i in survivors)
    if rejoin:
        assert cluster.hosts[1].engine.view >= 2
        assert not cluster.hosts[1].engine.joining


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    crash_delay=st.sampled_from((0.002, 0.008)),
    loss_rate=st.sampled_from((0.0, 0.08)),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_same_seed_replays_identical_history(crash_delay, loss_rate, seed):
    _, _, first = run_crash_history(crash_delay, loss_rate, seed, rejoin=True)
    _, _, second = run_crash_history(crash_delay, loss_rate, seed, rejoin=True)
    assert first == second


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_rejoined_member_log_is_strictly_increasing(seed):
    cluster, survivors, _ = run_crash_history(0.01, 0.05, seed, rejoin=True)
    logs = per_source_logs(cluster.delivered(1), cluster.n)
    for seqs in logs:
        assert all(b > a for a, b in zip(seqs, seqs[1:]))
