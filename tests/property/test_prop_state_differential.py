"""Differential property test: flat-array KnowledgeState vs a naive model.

The production :class:`~repro.core.state.KnowledgeState` stores AL/PAL in
preallocated flat arrays with frozen membership maps and count-augmented
cached minima.  This test drives it and an intentionally naive dict-of-dict
reference implementation — no caches, no arrays, recompute-everything —
through identical random sequences of merges, accepts, buffer updates,
exclusions and evictions, and asserts they agree on every observable:
matrices, minima, dirty sets, and snapshots.  Any divergence is a bug in
the optimised bookkeeping, caught against semantics too simple to get
wrong.
"""

from hypothesis import given, settings, strategies as st

from repro.core.state import INITIAL_BUF, KnowledgeState


class NaiveKnowledgeState:
    """Dict-of-dict reference semantics: recompute everything from scratch."""

    def __init__(self, n, index):
        self.n = n
        self.index = index
        self.req = {j: 1 for j in range(n)}
        self.al = {j: {k: 1 for k in range(n)} for j in range(n)}
        self.pal = {j: {k: 1 for k in range(n)} for j in range(n)}
        self.buf = {j: INITIAL_BUF for j in range(n)}
        self.excluded = {j: False for j in range(n)}
        self.evicted = {j: False for j in range(n)}

    def _live(self):
        return [j for j in range(self.n) if not self.excluded[j]]

    def _present(self):
        return [j for j in range(self.n) if not self.evicted[j]]

    def _merge(self, matrix, observer, vector):
        before_minima = [self._column_min(matrix, k) for k in range(self.n)]
        changed = False
        for k, value in enumerate(vector):
            if value > matrix[observer][k]:
                matrix[observer][k] = value
                changed = True
        dirty = tuple(
            k for k in range(self.n)
            if self._column_min(matrix, k) != before_minima[k]
        )
        return changed, dirty

    def _column_min(self, matrix, k):
        return min(matrix[j][k] for j in self._live())

    def merge_al(self, observer, vector):
        return self._merge(self.al, observer, vector)

    def merge_pal(self, observer, vector):
        return self._merge(self.pal, observer, vector)

    def accept(self, src, seq):
        assert seq == self.req[src]
        self.req[src] = seq + 1
        return self.merge_al(
            self.index, [self.req[k] for k in range(self.n)],
        )

    def update_buf(self, observer, buf):
        self.buf[observer] = buf

    def set_excluded(self, observer, excluded):
        assert observer != self.index
        self.excluded[observer] = excluded

    def set_evicted(self, observer, evicted):
        assert observer != self.index
        if self.evicted[observer] == evicted:
            return  # no transition: an independent exclusion is untouched
        self.evicted[observer] = evicted
        self.excluded[observer] = evicted

    def min_al(self, k):
        return self._column_min(self.al, k)

    def min_pal(self, k):
        return self._column_min(self.pal, k)

    def min_al_all_rows(self, k):
        return min(self.al[j][k] for j in self._present())

    def min_buf(self):
        return min(self.buf[j] for j in self._live())

    def snapshot(self):
        return {
            "roster": list(range(self.n)),
            "req": [self.req[j] for j in range(self.n)],
            "al": [[self.al[j][k] for k in range(self.n)] for j in range(self.n)],
            "pal": [[self.pal[j][k] for k in range(self.n)] for j in range(self.n)],
            "buf": [self.buf[j] for j in range(self.n)],
            "excluded": [self.excluded[j] for j in range(self.n)],
            "evicted": [self.evicted[j] for j in range(self.n)],
            "min_al": [self.min_al(k) for k in range(self.n)],
            "min_pal": [self.min_pal(k) for k in range(self.n)],
            "min_al_all": [self.min_al_all_rows(k) for k in range(self.n)],
            "min_buf": self.min_buf(),
        }


@st.composite
def op_sequences(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    index = draw(st.integers(min_value=0, max_value=n - 1))
    others = [j for j in range(n) if j != index]
    vector = st.lists(
        st.integers(min_value=1, max_value=40), min_size=n, max_size=n,
    )
    observer = st.integers(min_value=0, max_value=n - 1)
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("al"), observer, vector),
            st.tuples(st.just("fold"), observer,
                      st.lists(vector, min_size=0, max_size=4)),
            st.tuples(st.just("pal"), observer, vector),
            st.tuples(st.just("buf"), observer,
                      st.integers(min_value=0, max_value=50)),
            st.tuples(st.just("accept"), observer, st.just(None)),
            st.tuples(st.just("excl"), st.sampled_from(others), st.booleans()),
            st.tuples(st.just("evict"), st.sampled_from(others), st.booleans()),
        ),
        min_size=1, max_size=60,
    ))
    return n, index, ops


@settings(max_examples=200, deadline=None)
@given(op_sequences())
def test_flat_state_agrees_with_naive_reference(seq):
    n, index, ops = seq
    flat = KnowledgeState(n, index)
    naive = NaiveKnowledgeState(n, index)
    for kind, target, arg in ops:
        if kind in ("al", "pal"):
            merge = flat.merge_al if kind == "al" else flat.merge_pal
            ref = naive.merge_al if kind == "al" else naive.merge_pal
            outcome = merge(target, arg)
            changed, dirty = ref(target, arg)
            assert outcome.changed == changed
            assert outcome.dirty == dirty
        elif kind == "fold":
            outcome = flat.merge_al_fold(target, arg)
            # The fold must equal merging the vectors one at a time; the
            # naive model has no fold, so feed them through sequentially
            # and combine: changed = any changed, dirty = accumulated.
            changed_any, dirty_all = False, set()
            for vec in arg:
                changed, dirty = naive.merge_al(target, vec)
                changed_any |= changed
                dirty_all.update(dirty)
            assert outcome.changed == changed_any
            assert set(outcome.dirty) == dirty_all
        elif kind == "buf":
            flat.update_buf(target, arg)
            naive.update_buf(target, arg)
        elif kind == "accept":
            seq_no = naive.req[target]
            outcome = flat.accept(target, seq_no)
            changed, dirty = naive.accept(target, seq_no)
            assert outcome.changed == changed
            assert outcome.dirty == dirty
        elif kind == "excl":
            flat.set_excluded(target, arg)
            naive.set_excluded(target, arg)
        else:
            flat.set_evicted(target, arg)
            naive.set_evicted(target, arg)
        assert flat.snapshot() == naive.snapshot()
        assert flat.check_cache_consistency() == {}
        for k in range(n):
            assert flat.min_al(k) == naive.min_al(k)
            assert flat.min_pal(k) == naive.min_pal(k)
            assert flat.min_al_all_rows(k) == naive.min_al_all_rows(k)
        assert flat.min_buf() == naive.min_buf()
