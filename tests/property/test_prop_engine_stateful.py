"""Stateful property testing of one CO engine.

A hypothesis rule machine plays "the rest of the cluster" against a single
engine: submitting data, delivering in-order / out-of-order / duplicate
PDUs, heartbeats, RETs and ticks in arbitrary interleavings.  After every
step a battery of structural invariants must hold — the kind of thing a
single crafted unit test cannot sweep.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.causality import is_causality_preserved
from repro.core.config import ProtocolConfig
from repro.core.pdu import DataPdu, HeartbeatPdu, RetPdu
from tests.conftest import EngineDriver

N = 3
OTHERS = (1, 2)


class EngineMachine(RuleBasedStateMachine):
    """Feeds one engine (index 0 of a 3-cluster) consistent peer traffic.

    The machine maintains the peers' true state: each peer's send counter
    and acceptance vector.  Peer PDUs are generated from that state, so the
    engine sees a *plausible* (if adversarially interleaved and lossy)
    execution: per-source sequence numbers are dense, ACK vectors are
    monotone per sender and never claim unsent PDUs.
    """

    def __init__(self):
        super().__init__()
        self.driver = EngineDriver(0, N, ProtocolConfig())
        self.engine = self.driver.engine
        #: Peer j's sent PDUs (so retransmissions use identical copies).
        self.peer_sent = {j: [] for j in OTHERS}
        #: Peer j's acceptance vector (its REQ), kept monotone.
        self.peer_req = {j: [1] * N for j in OTHERS}
        self.delivered_before = 0

    # ------------------------------------------------------------------
    # Peer behaviour
    # ------------------------------------------------------------------
    def _peer_pdu(self, j: int) -> DataPdu:
        seq = len(self.peer_sent[j]) + 1
        req = self.peer_req[j]
        ack = list(req)
        ack[j] = seq            # engine convention: own ACK entry == SEQ
        req[j] = seq + 1        # self-acceptance after the snapshot
        pdu = DataPdu(
            cid=1, src=j, seq=seq, ack=tuple(ack),
            buf=10 ** 6, data=f"p{j}.{seq}",
        )
        self.peer_sent[j].append(pdu)
        return pdu

    def _advance_peer_knowledge(self, j: int) -> None:
        """Peer j accepts something it has not yet accepted, if possible."""
        req = self.peer_req[j]
        # It can accept from entity 0 (whatever our engine has sent) or
        # from the other peer (whatever that peer has sent).
        for k in range(N):
            if k == j:
                continue
            limit = (
                self.engine.sl.next_seq if k == 0 else len(self.peer_sent[k]) + 1
            )
            if req[k] < limit:
                req[k] += 1
                return

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(payload=st.integers(0, 9))
    def submit(self, payload):
        if self.engine.pending_requests < 20:
            self.engine.submit(f"app-{payload}")

    @rule(j=st.sampled_from(OTHERS))
    def peer_sends_in_order(self, j):
        pdu = self._peer_pdu(j)
        self.driver.receive(pdu)

    @rule(j=st.sampled_from(OTHERS))
    def peer_learns_something(self, j):
        self._advance_peer_knowledge(j)

    @rule(j=st.sampled_from(OTHERS), skip=st.integers(1, 3))
    def peer_sends_with_gap(self, j, skip):
        """Lose `skip` PDUs from peer j, deliver the next one (F1 path)."""
        for _ in range(skip):
            self._peer_pdu(j)           # sent but "lost"
        pdu = self._peer_pdu(j)
        self.driver.receive(pdu)

    @rule(j=st.sampled_from(OTHERS), back=st.integers(1, 5))
    def peer_retransmits_old_pdu(self, j, back):
        sent = self.peer_sent[j]
        if sent:
            self.driver.receive(sent[max(0, len(sent) - back)])

    @rule(j=st.sampled_from(OTHERS))
    def peer_heartbeats(self, j):
        req = tuple(self.peer_req[j])
        self.driver.receive(HeartbeatPdu(
            cid=1, src=j, ack=req, pack=(1,) * N, buf=10 ** 6,
        ))

    @rule(j=st.sampled_from(OTHERS), upto=st.integers(1, 10))
    def peer_requests_retransmission(self, j, upto):
        self.driver.receive(RetPdu(
            cid=1, src=j, lsrc=0, lseq=upto, ack=tuple(self.peer_req[j]),
            buf=10 ** 6,
        ))

    @rule(dt=st.sampled_from([1e-4, 2e-3, 1e-2]))
    def tick(self, dt):
        self.driver.tick(dt)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def prl_is_causality_preserved(self):
        assert is_causality_preserved(self.engine.prl)

    @invariant()
    def delivery_count_is_monotone(self):
        assert len(self.driver.delivered) >= self.delivered_before
        self.delivered_before = len(self.driver.delivered)

    @invariant()
    def deliveries_never_exceed_acceptances(self):
        assert self.engine.counters.delivered <= self.engine.counters.accepted

    @invariant()
    def req_never_exceeds_peer_truth(self):
        for j in OTHERS:
            assert self.engine.state.req[j] <= len(self.peer_sent[j]) + 1

    @invariant()
    def minima_never_exceed_own_row(self):
        state = self.engine.state
        for k in range(N):
            assert state.min_al(k) <= state.al[0][k]
            assert state.min_pal(k) <= state.pal[0][k]

    @invariant()
    def preack_floors_bounded_by_req(self):
        # Nothing can be pre-acknowledged before being accepted.
        for j in range(N):
            assert self.engine._preack_floor[j] <= self.engine.state.req[j]

    @invariant()
    def no_delivered_duplicates(self):
        seen = [(m.src, m.seq) for m in self.driver.delivered]
        assert len(seen) == len(set(seen))

    @invariant()
    def per_source_delivery_is_fifo(self):
        last = {}
        for m in self.driver.delivered:
            assert last.get(m.src, 0) < m.seq
            last[m.src] = m.seq


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None,
)
TestEngineMachine = EngineMachine.TestCase
