"""Property-based tests for the phi-accrual detector.

The detector is pure bookkeeping — the caller passes ``now`` everywhere —
so its defining property is *replay determinism*: identical arrival
traces produce identical phi series and identical state transitions,
independent of anything outside the trace.  On top of that, structural
properties of the score itself: monotone in silence, zero before the
mean, capped, and never suspicious below the absolute floor.
"""

from hypothesis import given, settings, strategies as st

from repro.core.detector import PHI_CAP, PeerState, PhiAccrualDetector

#: Inter-arrival gaps in (0.5ms, 500ms] — spans sub-floor and crash-like.
gaps = st.floats(min_value=5e-4, max_value=0.5, allow_nan=False)


def make_detector(**overrides):
    kwargs = dict(
        phi_suspect=8.0,
        phi_evict=12.0,
        window=16,
        min_samples=4,
        std_floor=0.3,
        sample_clamp=3.0,
        resuspect_cooldown=0.01,
        bootstrap_timeout=0.05,
    )
    kwargs.update(overrides)
    return PhiAccrualDetector(2, 0, **kwargs)


def replay(arrivals, polls):
    """Run one detector over an interleaved arrival/poll schedule and
    return the observable series (states and phi scores)."""
    det = make_detector()
    events = sorted(
        [(t, "heard") for t in arrivals] + [(t, "poll") for t in polls]
    )
    series = []
    for t, kind in events:
        if kind == "heard":
            det.heard(1, t)
        else:
            series.append((round(t, 9), det.poll(1, t).value, det.last_phi(1)))
    return series


@st.composite
def schedules(draw):
    """An arrival trace plus poll times scattered through and after it."""
    arrival_gaps = draw(st.lists(gaps, min_size=2, max_size=40))
    arrivals, now = [], 0.0
    for gap in arrival_gaps:
        now += gap
        arrivals.append(now)
    polls = sorted(
        draw(
            st.lists(
                st.floats(min_value=1e-4, max_value=now + 0.5),
                min_size=1,
                max_size=25,
            )
        )
    )
    return arrivals, polls


@given(schedules())
@settings(max_examples=150, deadline=None)
def test_identical_traces_identical_observables(schedule):
    arrivals, polls = schedule
    assert replay(arrivals, polls) == replay(arrivals, polls)


@given(st.lists(gaps, min_size=4, max_size=30), st.lists(gaps, min_size=2, max_size=8))
@settings(max_examples=150, deadline=None)
def test_phi_monotone_and_bounded_in_silence(arrival_gaps, silence_steps):
    det = make_detector()
    now = 0.0
    for gap in arrival_gaps:
        now += gap
        det.heard(1, now)
    scores, t = [], now
    for step in silence_steps:
        t += step
        scores.append(det.phi(1, t))
    assert scores == sorted(scores)
    assert all(0.0 <= s <= PHI_CAP for s in scores)
    assert det.phi(1, now) == 0.0                 # no silence, no score


@given(st.lists(st.floats(min_value=5e-4, max_value=0.02), min_size=6, max_size=50))
@settings(max_examples=150, deadline=None)
def test_never_suspected_below_absolute_floor(arrival_gaps):
    """Whatever the window looks like, polls taken less than the
    bootstrap floor after the last arrival never exclude the peer."""
    det = make_detector(bootstrap_timeout=0.05)
    now = 0.0
    for gap in arrival_gaps:
        now += gap
        det.heard(1, now)
        state = det.poll(1, now + 0.04)           # inside the floor
        assert not state.excludes
    assert det.counters.phi_suspects == 0


@given(st.lists(gaps, min_size=5, max_size=40))
@settings(max_examples=150, deadline=None)
def test_window_mean_bounded_by_clamp(arrival_gaps):
    """Sample clamping caps how fast one outlier can inflate the learned
    mean: each new sample is at most ``sample_clamp``x the mean before it,
    so the mean grows by at most that factor per arrival."""
    det = make_detector()
    now = 0.0
    for gap in arrival_gaps:
        now += gap
        # Clamping engages only once the window is primed (before that the
        # raw samples *are* the baseline being learned).
        primed_before = det.primed(1)
        prev_mean = det.mean(1)
        det.heard(1, now)
        if primed_before and prev_mean:
            assert det.mean(1) <= prev_mean * det.sample_clamp + 1e-12


@given(st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=25, deadline=None)
def test_heard_always_revokes(seed):
    """After any poll history, one arrival restores HEALTHY."""
    import random

    rng = random.Random(seed)
    det = make_detector()
    now = 0.0
    for _ in range(30):
        now += rng.uniform(5e-4, 0.3)
        if rng.random() < 0.5:
            det.heard(1, now)
        else:
            det.poll(1, now)
    now += 0.01
    det.heard(1, now)
    assert det.state(1) is PeerState.HEALTHY
    assert det.poll(1, now).value in ("healthy", "degraded")
