"""Property-based tests for the bounded flight recorder.

Two properties matter for a recorder meant to run forever inside a live
member: (1) the retained-record count never exceeds the configured bound,
whatever the event sequence, while the eviction accounting stays exact;
(2) a JSONL dump is lossless for everything the ring retained — load it
back and the analysis layer sees the same records.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.analysis.recording import summarize_recording
from repro.sim.trace import FlightRecorder, load_jsonl

CATEGORY = st.sampled_from(["accept", "drop", "deliver", "ret", "gauge"])

EVENTS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        CATEGORY,
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=-1000, max_value=1000),
    ),
    max_size=200,
)


@given(capacity=st.integers(min_value=1, max_value=50), events=EVENTS)
def test_recorder_never_exceeds_its_bound(capacity, events):
    recorder = FlightRecorder(capacity=capacity)
    for t, category, entity, seq in events:
        recorder.record(t, category, entity, seq=seq)
        assert len(recorder) <= capacity
    assert recorder.recorded_total == len(events)
    assert recorder.evicted == max(0, len(events) - capacity)
    assert len(recorder) == min(len(events), capacity)
    # The ring holds exactly the tail of the stream, in order.
    tail = events[-capacity:] if events else []
    assert [(r.time, r.category, r.entity, r.get("seq")) for r in recorder] \
        == [(t, c, e, s) for t, c, e, s in tail]


@settings(max_examples=25)
@given(capacity=st.integers(min_value=1, max_value=50), events=EVENTS)
def test_jsonl_round_trip_is_lossless_for_retained_records(capacity, events):
    recorder = FlightRecorder(capacity=capacity)
    for t, category, entity, seq in events:
        recorder.record(t, category, entity, seq=seq)
    path = f"/tmp/flight-prop-{os.getpid()}.jsonl"
    recorder.dump_jsonl(path)
    try:
        loaded, meta = load_jsonl(path)
        assert meta["capacity"] == capacity
        assert meta["recorded_total"] == len(events)
        assert [(r.time, r.category, r.entity, r.get("seq")) for r in loaded] \
            == [(r.time, r.category, r.entity, r.get("seq")) for r in recorder]
        # The analysis layer accepts any recording without crashing.
        summarize_recording(loaded, meta)
    finally:
        os.remove(path)
