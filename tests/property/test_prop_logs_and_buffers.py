"""Property-based tests for log structures, buffers and reporting."""

from hypothesis import given, settings, strategies as st

from repro.core.logs import Log, SendingLog
from repro.core.pdu import DataPdu
from repro.metrics.reporting import format_table
from repro.metrics.stats import summarize
from repro.net.buffers import ReceiveBuffer
from repro.ordering.properties import local_order_violations


@given(st.lists(st.integers()))
def test_log_is_fifo(items):
    log = Log()
    for item in items:
        log.enqueue(item)
    assert [log.dequeue() for _ in range(len(log))] == items


@given(st.integers(min_value=1, max_value=60))
def test_sending_log_roundtrip_and_prune(count):
    sl = SendingLog()
    for seq in range(1, count + 1):
        sl.append(DataPdu(cid=1, src=0, seq=seq, ack=(seq,), buf=0, data=None))
    cut = count // 2 + 1
    sl.prune_below(cut)
    assert sl.retained == count - cut + 1
    assert all(p.seq >= cut for p in sl)
    assert sl.get_range(1, count + 1) == list(sl)


@st.composite
def buffer_runs(draw):
    capacity = draw(st.integers(min_value=1, max_value=10))
    unit = draw(st.integers(min_value=1, max_value=min(3, capacity)))
    ops = draw(st.lists(st.sampled_from(["offer", "pop"]), max_size=60))
    return capacity, unit, ops


@settings(max_examples=150)
@given(buffer_runs())
def test_buffer_never_exceeds_capacity_and_counts_balance(run):
    capacity, unit, ops = run
    buf = ReceiveBuffer(capacity, unit)
    popped = 0
    for op in ops:
        if op == "offer":
            buf.offer(object())
        elif len(buf):
            buf.pop()
            popped += 1
        assert 0 <= buf.used_units <= capacity
        assert buf.free_units == capacity - buf.used_units
    assert buf.stats.accepted == popped + len(buf)
    assert buf.stats.offered == buf.stats.accepted + buf.stats.overruns
    assert buf.stats.high_water_units <= capacity


@given(st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 20)), max_size=30,
))
def test_local_order_checker_agrees_with_sorted_filter(log):
    violations = local_order_violations(log)
    # A log whose per-source subsequences are strictly increasing has no
    # violations; otherwise it must have at least one.
    clean = True
    last = {}
    for src, seq in log:
        if src in last and seq < last[src]:
            clean = False
        last[src] = max(seq, last.get(src, 0))
    assert (violations == []) == clean


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_summarize_bounds(samples):
    s = summarize(samples)
    tolerance = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
    assert s.minimum <= s.p50 <= s.maximum
    assert s.minimum - tolerance <= s.mean <= s.maximum + tolerance
    assert s.count == len(samples)


@given(st.lists(
    st.lists(st.integers(-99, 99), min_size=2, max_size=2),
    min_size=1, max_size=10,
))
def test_format_table_row_count(rows):
    text = format_table(["a", "b"], rows)
    assert len(text.splitlines()) == len(rows) + 2
