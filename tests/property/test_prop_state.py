"""Property-based tests for the knowledge matrices.

The incremental min caches must agree with brute-force recomputation after
*any* sequence of merges — the caches are what keep per-PDU work at O(n),
so a stale cache would silently corrupt the PACK/ACK conditions.
"""

from hypothesis import given, settings, strategies as st

from repro.core.state import KnowledgeState


@st.composite
def merge_sequences(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["al", "pal", "buf"]),
            st.integers(min_value=0, max_value=n - 1),
            st.lists(st.integers(min_value=1, max_value=50), min_size=n, max_size=n),
        ),
        min_size=1, max_size=40,
    ))
    return n, ops


@settings(max_examples=150, deadline=None)
@given(merge_sequences())
def test_min_caches_always_match_bruteforce(seq):
    n, ops = seq
    st_ = KnowledgeState(n, 0)
    for kind, observer, vector in ops:
        if kind == "al":
            st_.merge_al(observer, vector)
        elif kind == "pal":
            st_.merge_pal(observer, vector)
        else:
            st_.update_buf(observer, vector[0])
        for k in range(n):
            assert st_.min_al(k) == min(row[k] for row in st_.al)
            assert st_.min_pal(k) == min(row[k] for row in st_.pal)
        assert st_.min_buf() == min(st_.buf)


@settings(max_examples=100, deadline=None)
@given(merge_sequences())
def test_al_pal_matrices_are_monotone(seq):
    n, ops = seq
    st_ = KnowledgeState(n, 0)
    previous_al = [row[:] for row in st_.al]
    previous_pal = [row[:] for row in st_.pal]
    for kind, observer, vector in ops:
        if kind == "al":
            st_.merge_al(observer, vector)
        elif kind == "pal":
            st_.merge_pal(observer, vector)
        else:
            st_.update_buf(observer, vector[0])
        for i in range(n):
            for j in range(n):
                assert st_.al[i][j] >= previous_al[i][j]
                assert st_.pal[i][j] >= previous_pal[i][j]
        previous_al = [row[:] for row in st_.al]
        previous_pal = [row[:] for row in st_.pal]


@settings(max_examples=100, deadline=None)
@given(merge_sequences())
def test_merge_returns_changed_flag_correctly(seq):
    n, ops = seq
    st_ = KnowledgeState(n, 0)
    for kind, observer, vector in ops:
        if kind == "buf":
            continue
        merge = st_.merge_al if kind == "al" else st_.merge_pal
        matrix = st_.al if kind == "al" else st_.pal
        before = [row[:] for row in matrix]
        outcome = merge(observer, vector)
        assert bool(outcome) == outcome.changed == (matrix != before)
        # Re-merging the same vector is always a no-op with no dirty columns.
        again = merge(observer, vector)
        assert not again
        assert again.dirty == ()


@st.composite
def op_sequences_with_exclusion(draw):
    """Interleavings of merge_al / merge_pal / update_buf / set_excluded.

    The owner is entity 0 and can never exclude itself, so exclusion ops
    target observers 1..n-1 only.
    """
    n = draw(st.integers(min_value=2, max_value=5))
    vector = st.lists(
        st.integers(min_value=1, max_value=50), min_size=n, max_size=n
    )
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.sampled_from(["al", "pal"]),
                      st.integers(min_value=0, max_value=n - 1), vector),
            st.tuples(st.just("buf"),
                      st.integers(min_value=0, max_value=n - 1),
                      st.integers(min_value=0, max_value=60)),
            st.tuples(st.just("excl"),
                      st.integers(min_value=1, max_value=n - 1),
                      st.booleans()),
        ),
        min_size=1, max_size=60,
    ))
    return n, ops


@settings(max_examples=150, deadline=None)
@given(op_sequences_with_exclusion())
def test_min_caches_match_bruteforce_under_exclusion(seq):
    """Cached minima == brute-force minima over live rows, and every merge's
    dirty set names exactly the columns whose cached minimum rose — after
    arbitrary interleavings including membership changes."""
    n, ops = seq
    st_ = KnowledgeState(n, 0)
    for kind, observer, arg in ops:
        if kind in ("al", "pal"):
            min_of = st_.min_al if kind == "al" else st_.min_pal
            before_minima = [min_of(k) for k in range(n)]
            outcome = (st_.merge_al if kind == "al" else st_.merge_pal)(
                observer, arg)
            risen = {k for k in range(n) if min_of(k) != before_minima[k]}
            assert set(outcome.dirty) == risen
        elif kind == "buf":
            st_.update_buf(observer, arg)
        else:
            st_.set_excluded(observer, arg)
        live = [j for j in range(n) if not st_.excluded[j]]
        assert live == st_.live_observers()
        for k in range(n):
            assert st_.min_al(k) == min(st_.al[j][k] for j in live)
            assert st_.min_pal(k) == min(st_.pal[j][k] for j in live)
        assert st_.min_buf() == min(st_.buf[j] for j in live)
