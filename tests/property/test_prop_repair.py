"""Property-based tests for the anti-entropy repair layer.

Two families:

* codec properties — digest and repair-pull frames round-trip
  byte-exactly through the wire codec for arbitrary vectors and range
  lists;
* protocol properties — a repair-enabled cluster under heavy loss (control
  PDUs included, so digests and pulls get lost too) delivers exactly the
  loss-free sequence: same messages, same per-source order, at every
  entity.  The repair tiers may only *heal* — never duplicate, reorder or
  invent deliveries.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cluster import build_cluster
from repro.core.codec import decode_pdu, encode_pdu
from repro.core.config import ProtocolConfig
from repro.core.pdu import DigestPdu, RepairPullPdu
from repro.net.loss import BernoulliLoss, TargetedLoss
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry

U32 = st.integers(min_value=1, max_value=2 ** 32 - 1)
U32_0 = st.integers(min_value=0, max_value=2 ** 32 - 1)
U16 = st.integers(min_value=0, max_value=2 ** 16 - 1)


@st.composite
def digest_pdus(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return DigestPdu(
        cid=draw(U32_0),
        src=draw(st.integers(min_value=0, max_value=n - 1)),
        target=draw(U16),
        view=draw(U32_0),
        ack=tuple(draw(st.lists(U32, min_size=n, max_size=n))),
        delivered=tuple(draw(st.lists(U32, min_size=n, max_size=n))),
        buf=draw(U32_0),
    )


@st.composite
def repair_pull_pdus(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    count = draw(st.integers(min_value=0, max_value=8))
    ranges = []
    for _ in range(count):
        lo = draw(st.integers(min_value=1, max_value=2 ** 32 - 2))
        hi = draw(st.integers(min_value=lo + 1, max_value=2 ** 32 - 1))
        ranges.append((draw(U16), lo, hi))
    return RepairPullPdu(
        cid=draw(U32_0),
        src=draw(st.integers(min_value=0, max_value=n - 1)),
        target=draw(U16),
        ranges=tuple(ranges),
        ack=tuple(draw(st.lists(U32, min_size=n, max_size=n))),
        buf=draw(U32_0),
    )


# ----------------------------------------------------------------------
# Codec properties
# ----------------------------------------------------------------------
@given(digest_pdus())
def test_digest_roundtrip_byte_exact(pdu):
    frame = encode_pdu(pdu)
    decoded = decode_pdu(frame)
    assert isinstance(decoded, DigestPdu)
    assert decoded == pdu
    assert encode_pdu(decoded) == frame


@given(repair_pull_pdus())
def test_repair_pull_roundtrip_byte_exact(pdu):
    frame = encode_pdu(pdu)
    decoded = decode_pdu(frame)
    assert isinstance(decoded, RepairPullPdu)
    assert decoded == pdu
    assert encode_pdu(decoded) == frame
    assert decoded.requested_pdus == pdu.requested_pdus


@given(digest_pdus(), repair_pull_pdus())
def test_repair_frames_are_control_and_compact(digest, pull):
    assert digest.is_control and pull.is_control
    # Exact codec footprint (fixed header + vectors + buf + CRC trailer):
    # digests stay O(n); pulls stay O(n + ranges) — the whole point of the
    # lazy tiers is that neither grows with the amount of repaired data.
    n = len(digest.ack)
    assert len(encode_pdu(digest)) == 16 + 8 * n + 8
    m, r = len(pull.ack), len(pull.ranges)
    assert len(encode_pdu(pull)) == 14 + 4 * m + 10 * r + 8
    # The modelled byte accounting (wire_size is a 4-byte-int field model,
    # like every other PDU type) tracks the same asymptotics.
    assert digest.wire_size() == (5 + 2 * n) * 4
    assert pull.wire_size() == (4 + m + 3 * r) * 4


# ----------------------------------------------------------------------
# Protocol properties
# ----------------------------------------------------------------------
def _per_source_tables(cluster, n):
    """Per-entity, per-source ``(seq, payload)`` delivery projections.

    The protocol orders *causally*, not totally: concurrent messages from
    different sources may legitimately interleave differently between a
    lossy and a loss-free run (arrival order changes which PACK fires
    first).  What must be byte-identical is each source's subsequence —
    same seqs, same payloads, same order, nothing missing or invented.
    """
    tables = []
    for i in range(n):
        rows = [[] for _ in range(n)]
        for m in cluster.delivered(i):
            rows[m.src].append((m.seq, m.data))
        tables.append(rows)
    return tables


def _run_workload(seed, n, per_entity, loss, repair):
    config = ProtocolConfig(
        suspect_timeout=0.05,
        anti_entropy_interval=0.01 if repair else None,
        delta_sync_threshold=6,
        pull_after_retries=1,
    )
    cluster = build_cluster(
        n, config=config, loss=loss, rngs=RngRegistry(seed),
    )
    for k in range(per_entity):
        for i in range(n):
            cluster.submit(i, f"m-{i}-{k}")
    cluster.run_until_quiescent(max_time=120.0)
    return cluster


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    n=st.integers(min_value=2, max_value=5),
    per_entity=st.integers(min_value=1, max_value=6),
    loss_rate=st.sampled_from((0.1, 0.25)),
)
def test_repaired_deliveries_match_loss_free_run(seed, n, per_entity, loss_rate):
    """The end-to-end equivalence oracle: a lossy repair-enabled run ends
    with every entity's per-source delivery projection byte-identical to
    the loss-free run of the same workload — repair heals, and never
    duplicates, reorders within a source, or invents deliveries.

    Loss is unprotected: digests, pulls and delta bursts drop too, so the
    repair machinery must also recover from losing itself.
    """
    reference = _run_workload(seed, n, per_entity, loss=None, repair=False)
    lossy = _run_workload(
        seed, n, per_entity,
        loss=BernoulliLoss(loss_rate, protect_control=False), repair=True,
    )
    assert _per_source_tables(lossy, n) == _per_source_tables(reference, n)
    verify_run(lossy.trace, n, expect_all_delivered=True).assert_ok()


@settings(deadline=None, max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    rate=st.sampled_from((0.4, 0.6)),
)
def test_storm_victim_converges_with_repair(seed, rate):
    """A victim losing most inbound traffic still converges to per-source
    projections byte-identical to the loss-free run."""
    n = 4
    reference = _run_workload(seed, n, 4, loss=None, repair=False)
    lossy = _run_workload(
        seed, n, 4, loss=TargetedLoss({n - 1}, rate=rate), repair=True,
    )
    assert _per_source_tables(lossy, n) == _per_source_tables(reference, n)
    verify_run(lossy.trace, n, expect_all_delivered=True).assert_ok()


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_repair_layer_is_quiet_without_staleness(seed):
    """On a loss-free run the repair layer sends digests but never needs a
    pull or a delta — anti-entropy must not manufacture repair traffic."""
    cluster = _run_workload(seed, 4, 3, loss=None, repair=True)
    totals = {}
    for member in cluster.counters():
        for key, value in member["engine"].items():
            totals[key] = totals.get(key, 0) + value
    assert totals["digests_sent"] > 0
    assert totals["pulls_sent"] == 0
    assert totals["delta_pdus_sent"] == 0
    assert totals["repair_escalations"] == 0
