"""Property-based round-trip tests for the wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core.codec import CodecError, decode_pdu, encode_pdu, encoded_size
from repro.core.pdu import DataPdu, HeartbeatPdu, RetPdu

U32 = st.integers(min_value=1, max_value=2 ** 32 - 1)
U32_0 = st.integers(min_value=0, max_value=2 ** 32 - 1)
U16 = st.integers(min_value=0, max_value=2 ** 16 - 1)
VECTOR = st.lists(U32, min_size=1, max_size=16).map(tuple)


@st.composite
def data_pdus(draw):
    ack = draw(VECTOR)
    payload = draw(st.one_of(st.none(), st.binary(max_size=200)))
    return DataPdu(
        cid=draw(U32_0),
        src=draw(st.integers(min_value=0, max_value=len(ack) - 1)),
        seq=draw(U32),
        ack=ack,
        buf=draw(U32_0),
        data=payload,
        data_size=0 if payload is None else len(payload),
    )


@st.composite
def ret_pdus(draw):
    ack = draw(VECTOR)
    return RetPdu(
        cid=draw(U32_0),
        src=draw(U16),
        lsrc=draw(st.integers(min_value=0, max_value=len(ack) - 1)),
        lseq=draw(U32),
        ack=ack,
        buf=draw(U32_0),
    )


@st.composite
def heartbeat_pdus(draw):
    ack = draw(VECTOR)
    pack = tuple(draw(st.lists(U32, min_size=len(ack), max_size=len(ack))))
    return HeartbeatPdu(
        cid=draw(U32_0),
        src=draw(U16),
        ack=ack,
        pack=pack,
        buf=draw(U32_0),
        probe=draw(st.booleans()),
    )


@given(data_pdus())
def test_data_roundtrip(pdu):
    decoded = decode_pdu(encode_pdu(pdu))
    assert isinstance(decoded, DataPdu)
    assert decoded.cid == pdu.cid
    assert decoded.src == pdu.src
    assert decoded.seq == pdu.seq
    assert decoded.ack == pdu.ack
    assert decoded.buf == pdu.buf
    assert decoded.is_null == pdu.is_null
    if not pdu.is_null:
        expected = pdu.data if isinstance(pdu.data, bytes) else pdu.data.encode()
        assert decoded.data == expected


@given(ret_pdus())
def test_ret_roundtrip(pdu):
    decoded = decode_pdu(encode_pdu(pdu))
    assert decoded == pdu


@given(heartbeat_pdus())
def test_heartbeat_roundtrip(pdu):
    decoded = decode_pdu(encode_pdu(pdu))
    assert decoded == pdu


@given(data_pdus())
def test_encoded_size_linear_in_n(pdu):
    grown = DataPdu(
        cid=pdu.cid, src=pdu.src, seq=pdu.seq,
        ack=pdu.ack + (1,) * 4, buf=pdu.buf,
        data=pdu.data, data_size=pdu.data_size,
    )
    assert encoded_size(grown) - encoded_size(pdu) == 16  # 4 more u32 entries


@given(st.binary(max_size=64))
def test_decoder_never_crashes_on_garbage(blob):
    try:
        decode_pdu(blob)
    except CodecError:
        pass  # rejecting is fine; crashing is not


@given(data_pdus())
def test_truncation_is_detected_at_every_byte_offset(pdu):
    encoded = encode_pdu(pdu)
    for cut in range(len(encoded)):
        with pytest.raises(CodecError):
            decoded = decode_pdu(encoded[:cut])
            # Truncating the payload alone may still parse only if the
            # declared length matched -- it cannot, since we cut bytes.
            assert decoded is not None


@given(data_pdus())
def test_memoryview_truncation_is_detected_at_every_byte_offset(pdu):
    # The zero-copy decode path must reject truncation exactly like the
    # bytes path — memoryview slicing silently shortens instead of
    # raising, so every length check has to hold on views too.
    view = memoryview(encode_pdu(pdu))
    for cut in range(len(view)):
        with pytest.raises(CodecError):
            decode_pdu(view[:cut])


def test_str_payload_roundtrips_as_bytes():
    pdu = DataPdu(cid=1, src=0, seq=1, ack=(1, 1), buf=0, data="héllo", data_size=6)
    decoded = decode_pdu(encode_pdu(pdu))
    assert decoded.data == "héllo".encode("utf-8")


def test_unencodable_payload_rejected():
    pdu = DataPdu(cid=1, src=0, seq=1, ack=(1,), buf=0, data={"a": 1})
    with pytest.raises(CodecError):
        encode_pdu(pdu)


# ----------------------------------------------------------------------
# Membership-extension PDUs and the CRC trailer
# ----------------------------------------------------------------------
from repro.core.codec import decode_pdu_safe
from repro.core.pdu import JoinPdu, StatePdu, ViewChangePdu

MEMBERS = st.lists(U16, min_size=1, max_size=8, unique=True).map(
    lambda m: tuple(sorted(m))
)


@st.composite
def viewchange_pdus(draw):
    ack = draw(VECTOR)
    phase = draw(st.sampled_from(("propose", "agree", "install")))
    flush = ack if phase == "install" else ()
    return ViewChangePdu(
        cid=draw(U32_0), src=draw(U16), view=draw(st.integers(1, 2 ** 16)),
        phase=phase, members=draw(MEMBERS), ack=ack, buf=draw(U32_0),
        flush=flush,
    )


@st.composite
def state_pdus(draw):
    ack = draw(VECTOR)
    pack = tuple(draw(st.lists(U32_0, min_size=len(ack), max_size=len(ack))))
    prefix = draw(
        st.lists(st.tuples(U16, U32), max_size=12).map(tuple)
    )
    return StatePdu(
        cid=draw(U32_0), src=draw(U16), joiner=draw(U16),
        view=draw(st.integers(0, 2 ** 16)), members=draw(MEMBERS),
        ack=ack, pack=pack, buf=draw(U32_0), prefix=prefix,
    )


@given(viewchange_pdus())
def test_viewchange_roundtrip(pdu):
    decoded = decode_pdu(encode_pdu(pdu))
    assert decoded == pdu


@given(st.tuples(U32_0, U16, U32_0, st.booleans()))
def test_join_roundtrip(fields):
    cid, src, buf, ready = fields
    pdu = JoinPdu(cid=cid, src=src, buf=buf, ready=ready)
    assert decode_pdu(encode_pdu(pdu)) == pdu


@given(state_pdus())
def test_state_roundtrip(pdu):
    decoded = decode_pdu(encode_pdu(pdu))
    assert decoded == pdu


@given(data_pdus())
def test_every_single_byte_flip_is_rejected(pdu):
    # The CRC trailer must catch any single-byte corruption anywhere in the
    # frame — header, vectors, payload or the checksum itself.
    frame = encode_pdu(pdu)
    for position in range(len(frame)):
        damaged = bytearray(frame)
        damaged[position] ^= 0xA5
        assert decode_pdu_safe(bytes(damaged)) is None


# ----------------------------------------------------------------------
# Dissemination relay wrapper (PR 8): nested-frame encoding
# ----------------------------------------------------------------------
from repro.core.pdu import BatchPdu, RelayPdu


@st.composite
def batch_pdus(draw):
    base = draw(data_pdus())
    count = draw(st.integers(min_value=0, max_value=3))
    pack = tuple(draw(st.lists(U32, min_size=len(base.ack), max_size=len(base.ack))))
    first_seq = min(base.seq, 2 ** 32 - 1 - count)
    pdus = tuple(
        DataPdu(cid=base.cid, src=base.src, seq=first_seq + i, ack=base.ack,
                buf=base.buf, data=base.data, data_size=base.data_size)
        for i in range(count)
    )
    return BatchPdu(cid=base.cid, src=base.src, ack=base.ack, pack=pack,
                    buf=base.buf, pdus=pdus)


@st.composite
def relay_pdus(draw):
    frame = draw(st.one_of(data_pdus(), batch_pdus()))
    n = draw(st.integers(min_value=1, max_value=16))
    min_ack = tuple(draw(st.lists(U32_0, min_size=n, max_size=n)))
    min_pack = tuple(draw(st.lists(U32_0, min_size=n, max_size=n)))
    path = tuple(draw(st.lists(U16, min_size=1, max_size=6, unique=True)))
    return RelayPdu(cid=draw(U32_0), src=path[-1], path=path,
                    min_ack=min_ack, min_pack=min_pack,
                    buf=draw(U32_0), frame=frame)


@given(relay_pdus())
def test_relay_roundtrip(pdu):
    assert decode_pdu(encode_pdu(pdu)) == pdu


@given(relay_pdus())
def test_relay_encoded_size_is_exact(pdu):
    assert encoded_size(pdu) == len(encode_pdu(pdu))


@given(relay_pdus())
def test_relay_truncation_is_detected_at_every_byte_offset(pdu):
    # The relay body carries an inner length prefix: truncating anywhere —
    # including inside the nested frame — must fail the outer CRC/length
    # checks, never return a half-decoded wrapper.
    encoded = encode_pdu(pdu)
    for cut in range(len(encoded)):
        with pytest.raises(CodecError):
            decode_pdu(encoded[:cut])


# ----------------------------------------------------------------------
# Zero-copy paths: memoryview inputs, in-place encoding, arithmetic sizes
# ----------------------------------------------------------------------
from repro.core.codec import encode_pdu_into, encode_pdu_view


@given(st.one_of(data_pdus(), ret_pdus(), heartbeat_pdus(),
                 viewchange_pdus(), state_pdus()))
def test_memoryview_decode_matches_bytes_decode(pdu):
    frame = encode_pdu(pdu)
    assert decode_pdu(memoryview(frame)) == decode_pdu(frame)
    assert decode_pdu(bytearray(frame)) == decode_pdu(frame)


@given(st.one_of(data_pdus(), ret_pdus(), heartbeat_pdus(),
                 viewchange_pdus(), state_pdus()))
def test_encoded_size_is_exact_without_encoding(pdu):
    assert encoded_size(pdu) == len(encode_pdu(pdu))


@given(data_pdus(), st.integers(min_value=0, max_value=37))
def test_encode_pdu_into_at_offset_round_trips(pdu, offset):
    buf = bytearray(offset)  # deliberately too small: must grow in place
    end = encode_pdu_into(pdu, buf, offset)
    assert end == offset + encoded_size(pdu)
    frame = bytes(buf[offset:end])
    assert frame == encode_pdu(pdu)
    assert decode_pdu(frame) == pdu


@given(data_pdus(), ret_pdus())
def test_encode_pdu_into_packs_frames_back_to_back(first, second):
    buf = bytearray()
    mid = encode_pdu_into(first, buf, 0)
    end = encode_pdu_into(second, buf, mid)
    assert decode_pdu(memoryview(buf)[:mid]) == decode_pdu(encode_pdu(first))
    assert decode_pdu(memoryview(buf)[mid:end]) == second


@given(data_pdus())
def test_encode_pdu_view_matches_encode_pdu(pdu):
    view = encode_pdu_view(pdu)
    assert view.readonly
    frame = bytes(view)  # consume immediately: valid until the next encode
    assert frame == encode_pdu(pdu)


@given(heartbeat_pdus())
def test_decode_pdu_safe_counts_corrupt_frames(pdu):
    frame = bytearray(encode_pdu(pdu))
    frame[len(frame) // 2] ^= 0xFF
    counters = {"codec_corrupt_frames": 0}
    assert decode_pdu_safe(bytes(frame), counters) is None
    assert counters["codec_corrupt_frames"] == 1
    # An intact frame decodes and leaves the counter alone.
    assert decode_pdu_safe(encode_pdu(pdu), counters) == pdu
    assert counters["codec_corrupt_frames"] == 1
