"""Property-based tests for vector clocks."""

from hypothesis import given, settings, strategies as st

from repro.ordering.vector_clock import VectorClock


def clocks(n=4):
    return st.builds(
        VectorClock,
        st.lists(st.integers(min_value=0, max_value=20), min_size=n, max_size=n),
    )


@given(clocks(), clocks())
def test_merge_is_upper_bound(a, b):
    m = a | b
    assert a <= m and b <= m


@given(clocks(), clocks())
def test_merge_commutative(a, b):
    assert (a | b) == (b | a)


@given(clocks(), clocks(), clocks())
def test_merge_associative(a, b, c):
    assert ((a | b) | c) == (a | (b | c))


@given(clocks())
def test_merge_idempotent(a):
    assert (a | a) == a


@given(clocks(), st.integers(min_value=0, max_value=3))
def test_tick_strictly_advances(a, i):
    assert a < a.tick(i)


@given(clocks(), clocks())
def test_exactly_one_relation_holds(a, b):
    relations = [a < b, b < a, a == b, a.concurrent_with(b)]
    assert sum(relations) == 1


@given(clocks(), clocks(), clocks())
def test_happened_before_transitive(a, b, c):
    if a < b and b < c:
        assert a < c


@given(clocks())
def test_not_less_than_self(a):
    assert not a < a
    assert a <= a
