"""Property-based tests of the whole protocol: random environments in,
CO service contract out.

Each example draws a cluster size, workload shape, loss environment and
seed, runs the full simulation, and asserts the ordering oracle's report is
clean.  This is the repository's strongest single check: the protocol has
no knowledge of the oracle, and the oracle has no knowledge of sequence
numbers.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cluster import build_cluster, CpuModel
from repro.core.config import ProtocolConfig, RetransmissionScheme
from repro.net.loss import BernoulliLoss
from repro.ordering.checker import verify_run
from repro.sim.rng import RngRegistry

ENVIRONMENTS = st.fixed_dictionaries({
    "n": st.integers(min_value=2, max_value=5),
    "seed": st.integers(min_value=0, max_value=10_000),
    "loss": st.sampled_from([0.0, 0.03, 0.08, 0.15]),
    "protect_control": st.booleans(),
    "window": st.sampled_from([2, 4, 8]),
    "messages": st.integers(min_value=3, max_value=12),
    "senders": st.sampled_from(["one", "two", "all"]),
    "scheme": st.sampled_from(list(RetransmissionScheme)),
})


def run_environment(env):
    config = ProtocolConfig(window=env["window"], retransmission=env["scheme"])
    loss = None
    if env["loss"] > 0:
        loss = BernoulliLoss(env["loss"], protect_control=env["protect_control"])
    cluster = build_cluster(
        env["n"], config=config, loss=loss, rngs=RngRegistry(env["seed"]),
        buffer_capacity=max(64, 2 * env["n"]),
    )
    if env["senders"] == "one":
        senders = [0]
    elif env["senders"] == "two":
        senders = list({0, env["n"] - 1})
    else:
        senders = list(range(env["n"]))
    for k in range(env["messages"]):
        for s in senders:
            cluster.submit(s, f"m{s}.{k}")
    cluster.run_until_quiescent(max_time=60.0)
    return cluster, len(senders) * env["messages"]


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ENVIRONMENTS)
def test_co_service_contract_holds_in_random_environments(env):
    cluster, sent = run_environment(env)
    report = verify_run(cluster.trace, env["n"])
    assert report.ok, report.summary()
    assert report.deliveries == [sent] * env["n"]


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ENVIRONMENTS)
def test_every_entity_quiesces_with_empty_logs(env):
    cluster, _ = run_environment(env)
    for engine in cluster.engines:
        assert engine.quiescent
        assert engine.rrl.total == 0
        assert len(engine.prl) == 0
        assert engine.gaps.open_gaps == 0


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ENVIRONMENTS)
def test_acknowledged_prefix_agrees_across_entities(env):
    """All entities acknowledge the same PDU set (atomicity)."""
    cluster, _ = run_environment(env)
    ack_sets = [
        {p.pdu_id for p in engine.arl}
        for engine in cluster.engines
    ]
    assert all(s == ack_sets[0] for s in ack_sets)
