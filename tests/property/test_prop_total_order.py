"""Property tests for the total-order ranking.

Over random loss-free executions (where ACK vectors are exact), both the
naive rank and the effective rank must be strict total orders extending
causality-precedence; and the effective-ACK repair must be the identity
when there is nothing to repair.
"""

from hypothesis import given, settings, strategies as st

from repro.core.causality import causally_precedes
from repro.extensions.total_order import total_order_key

from tests.property.test_prop_causality import executions


@settings(max_examples=80, deadline=None)
@given(executions())
def test_naive_rank_extends_causality_without_loss(execution):
    pdus = execution.pdus
    for p in pdus:
        for q in pdus:
            if p.pdu_id != q.pdu_id and causally_precedes(p, q):
                assert total_order_key(p) < total_order_key(q)


@settings(max_examples=80, deadline=None)
@given(executions())
def test_rank_is_a_total_order(execution):
    keys = [total_order_key(p) for p in execution.pdus]
    assert len(set(keys)) == len(keys)  # no ties between distinct PDUs


@settings(max_examples=60, deadline=None)
@given(executions())
def test_effective_ack_is_identity_without_loss(execution):
    """Recompute eff() the way the engine does, over the full PDU set in
    a causality-respecting order: with exact ACK vectors (no loss), the
    repair must change nothing."""
    # Acknowledgment order: any topological order of ≺ — use CPI.
    from repro.core.causality import cpi_insert

    ordered = []
    for p in execution.pdus:
        cpi_insert(ordered, p)
    eff = {}
    for p in ordered:
        vector = list(p.ack)
        for q in ordered:
            if q.pdu_id == p.pdu_id:
                break
            if causally_precedes(q, p):
                for k, value in enumerate(eff[q.pdu_id]):
                    if value > vector[k]:
                        vector[k] = value
        eff[p.pdu_id] = tuple(vector)
        assert eff[p.pdu_id] == p.ack, (p, eff[p.pdu_id])
